"""Known-answer and behavioural tests for the glibc rand() reimplementation."""

import numpy as np
import pytest

from repro.bitsource.glibc import AnsiCLcg, GlibcRandom, glibc_rand_sequence

# The canonical glibc sequence for srand(1); reproduced by every glibc
# system (e.g. printed by the classic `rand()` demo programs).
GLIBC_SEED1 = [
    1804289383,
    846930886,
    1681692777,
    1714636915,
    1957747793,
    424238335,
    719885386,
    1649760492,
    596516649,
    1189641421,
]


class TestGlibcKnownAnswers:
    def test_seed1_sequence(self):
        g = GlibcRandom(1)
        assert [g.rand() for _ in range(10)] == GLIBC_SEED1

    def test_helper_function(self):
        assert glibc_rand_sequence(1, 10) == GLIBC_SEED1

    def test_seed_zero_treated_as_one(self):
        """glibc maps seed 0 to 1."""
        assert glibc_rand_sequence(0, 3) == GLIBC_SEED1[:3]

    def test_vectorized_matches_scalar(self):
        a = GlibcRandom(123)
        b = GlibcRandom(123)
        arr = a.rand_array(2000)
        sc = np.array([b.rand() for _ in range(2000)], dtype=np.uint32)
        assert np.array_equal(arr, sc)

    def test_outputs_are_31bit(self):
        vals = GlibcRandom(7).rand_array(5000)
        assert vals.max() < 2**31

    def test_reseed_restarts(self):
        g = GlibcRandom(1)
        g.rand_array(100)
        g.reseed(1)
        assert g.rand() == GLIBC_SEED1[0]

    def test_different_seeds_differ(self):
        assert glibc_rand_sequence(1, 5) != glibc_rand_sequence(2, 5)


class TestGlibcBitSource:
    def test_words64_bit_accounting(self):
        """Each 64-bit word consumes exactly three rand() outputs."""
        a = GlibcRandom(5)
        w = a.words64(4)
        b = GlibcRandom(5)
        vals = b.rand_array(12).astype(np.uint64)
        expect = [
            int((vals[3 * i] << np.uint64(33))
                | (vals[3 * i + 1] << np.uint64(2))
                | (vals[3 * i + 2] & np.uint64(3)))
            for i in range(4)
        ]
        assert [int(x) for x in w] == expect

    def test_bits_interface(self):
        bits = GlibcRandom(5).bits(1000)
        assert bits.size == 1000
        assert set(np.unique(bits)) <= {0, 1}

    def test_chunks3_range(self):
        chunks = GlibcRandom(5).chunks3(5000)
        assert chunks.size == 5000
        assert chunks.max() <= 7

    def test_uniform_interface(self):
        u = GlibcRandom(5).uniform(1000)
        assert (u >= 0).all() and (u < 1).all()

    def test_negative_counts_rejected(self):
        g = GlibcRandom(5)
        with pytest.raises(ValueError):
            g.words64(-1)
        with pytest.raises(ValueError):
            g.bits(-1)
        with pytest.raises(ValueError):
            g.chunks3(-1)


class TestAnsiCLcg:
    def test_classic_sequence(self):
        """The well-known ANSI C example sequence for seed 1."""
        a = AnsiCLcg(1)
        assert [a.rand() for _ in range(5)] == [16838, 5758, 10113, 17515, 31051]

    def test_vector_matches_scalar(self):
        a, b = AnsiCLcg(77), AnsiCLcg(77)
        arr = a.rand_array(10000)
        sc = np.array([b.rand() for _ in range(10000)], dtype=np.uint32)
        assert np.array_equal(arr, sc)

    def test_outputs_are_15bit(self):
        assert AnsiCLcg(3).rand_array(1000).max() < 2**15

    def test_reseed(self):
        a = AnsiCLcg(1)
        a.rand_array(500)
        a.reseed(1)
        assert a.rand() == 16838

    def test_words64(self):
        w = AnsiCLcg(1).words64(10)
        assert w.dtype == np.uint64 and w.size == 10
