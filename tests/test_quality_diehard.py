"""Tests for the DIEHARD battery: each test discriminates good from bad."""

import numpy as np
import pytest

from repro.baselines.base import PRNG
from repro.baselines.mt19937 import MT19937
from repro.quality.diehard import (
    DIEHARD_TEST_NAMES,
    binary_rank_test,
    birthday_spacings,
    bitstream_test,
    count_the_ones_bytes,
    count_the_ones_stream,
    craps_test,
    gf2_rank_batch,
    minimum_distance,
    monkey_group,
    operm5_test,
    opso_test,
    overlapping_sums,
    parking_lot,
    permutation_index,
    rank_test_group,
    run_diehard,
    runs_test,
    spheres_3d,
    squeeze_test,
)


class ConstantPRNG(PRNG):
    """Pathologically bad: emits one repeating word."""

    name = "constant"

    def __init__(self, value=0xDEADBEEF):
        self._v = np.uint32(value)

    def reseed(self, seed):
        pass

    def u32_array(self, n):
        return np.full(n, self._v, dtype=np.uint32)


class StripedPRNG(PRNG):
    """Alternates two values: flunks serial structure tests."""

    name = "striped"

    def reseed(self, seed):
        pass

    def u32_array(self, n):
        out = np.empty(n, dtype=np.uint32)
        out[0::2] = np.uint32(0x0F0F0F0F)
        out[1::2] = np.uint32(0xF0F0F0F0)
        return out


GOOD = lambda: MT19937(20240701)


class TestBirthday:
    def test_good_generator_passes(self):
        assert birthday_spacings(GOOD(), n_samples=100).passed

    def test_striped_fails(self):
        assert not birthday_spacings(StripedPRNG(), n_samples=100).passed

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            birthday_spacings(GOOD(), bit_offsets=(20,))


class TestOperm5:
    def test_good_passes(self):
        assert operm5_test(GOOD(), n_groups=24_000).passed

    def test_size_floor(self):
        with pytest.raises(ValueError):
            operm5_test(GOOD(), n_groups=100)

    def test_permutation_index_bijective(self):
        rng = np.random.Generator(np.random.PCG64(5))
        # All 120 permutations of 5 distinct values are hit exactly once.
        from itertools import permutations

        groups = np.array(list(permutations([10, 20, 30, 40, 50])))
        idx = permutation_index(groups)
        assert sorted(idx) == list(range(120))

    def test_permutation_index_shape_check(self):
        with pytest.raises(ValueError):
            permutation_index(np.zeros((3, 4)))


class TestRanks:
    def test_gf2_rank_known_matrices(self):
        ident = np.array([[1, 2, 4, 8]], dtype=np.uint64)  # I_4 packed
        assert gf2_rank_batch(ident, 4)[0] == 4
        singular = np.array([[1, 1, 2, 3]], dtype=np.uint64)
        assert gf2_rank_batch(singular, 2)[0] == 2
        zero = np.zeros((1, 5), dtype=np.uint64)
        assert gf2_rank_batch(zero, 5)[0] == 0

    def test_gf2_rank_duplicate_rows(self):
        m = np.array([[7, 7, 7]], dtype=np.uint64)
        assert gf2_rank_batch(m, 3)[0] == 1

    def test_gf2_rank_batch_consistency(self):
        rng = np.random.Generator(np.random.PCG64(2))
        mats = rng.integers(0, 2**32, size=(50, 32), dtype=np.uint64)
        batched = gf2_rank_batch(mats, 32)
        single = np.array([gf2_rank_batch(mats[i : i + 1], 32)[0] for i in range(50)])
        assert np.array_equal(batched, single)

    def test_gf2_rank_matches_numpy_mod2(self):
        rng = np.random.Generator(np.random.PCG64(3))
        for _ in range(10):
            bits = rng.integers(0, 2, size=(6, 8))
            packed = np.array(
                [[sum(int(b) << j for j, b in enumerate(row)) for row in bits]],
                dtype=np.uint64,
            )
            # Rank over GF(2) via sympy-free elimination in Python.
            rows = [int(v) for v in packed[0]]
            rank = 0
            for c in range(8):
                piv = next((i for i in range(rank, len(rows))
                            if rows[i] >> c & 1), None)
                if piv is None:
                    continue
                rows[rank], rows[piv] = rows[piv], rows[rank]
                for i in range(len(rows)):
                    if i != rank and rows[i] >> c & 1:
                        rows[i] ^= rows[rank]
                rank += 1
            assert gf2_rank_batch(packed, 8)[0] == rank

    def test_good_generator_rank_distribution(self):
        assert binary_rank_test(GOOD(), 32, 32, n_matrices=800).passed

    def test_rank_group_returns_two(self):
        big, small = rank_test_group(GOOD(), n_matrices=300)
        assert "31x31" in big.name and "6x8" in small.name

    def test_cols_validation(self):
        with pytest.raises(ValueError):
            gf2_rank_batch(np.zeros((1, 4), dtype=np.uint64), 65)


class TestMonkey:
    def test_good_passes_bitstream(self):
        assert bitstream_test(GOOD()).passed

    def test_good_passes_group(self):
        assert monkey_group(GOOD()).passed

    def test_constant_fails(self):
        assert not bitstream_test(ConstantPRNG()).passed
        assert not opso_test(ConstantPRNG()).passed


class TestCount1s:
    def test_good_passes(self):
        assert count_the_ones_stream(GOOD(), n_bytes=200_000).passed
        assert count_the_ones_bytes(GOOD(), n_words=200_000).passed

    def test_constant_fails(self):
        assert not count_the_ones_stream(ConstantPRNG(), n_bytes=200_000).passed

    def test_validation(self):
        with pytest.raises(ValueError):
            count_the_ones_stream(GOOD(), n_bytes=2)
        with pytest.raises(ValueError):
            count_the_ones_bytes(GOOD(), byte_index=4)


class TestGeometry:
    def test_parking_good(self):
        assert parking_lot(GOOD(), n_rounds=2).passed

    def test_mindist_good(self):
        assert minimum_distance(GOOD(), n_rounds=8).passed

    def test_spheres_good(self):
        assert spheres_3d(GOOD(), n_rounds=8).passed

    def test_mindist_constant_fails(self):
        assert not minimum_distance(ConstantPRNG(), n_rounds=8).passed


class TestSqueezeSumsRunsCraps:
    def test_squeeze_good(self):
        assert squeeze_test(GOOD(), n_reps=30_000).passed

    def test_squeeze_floor(self):
        with pytest.raises(ValueError):
            squeeze_test(GOOD(), n_reps=10)

    def test_sums_good(self):
        assert overlapping_sums(GOOD(), n_sums=800).passed

    def test_runs_good(self):
        assert runs_test(GOOD(), n=30_000).passed

    def test_runs_sorted_fails(self):
        class Sorted(PRNG):
            name = "sorted"

            def reseed(self, seed):
                pass

            def u32_array(self, n):
                return np.arange(n, dtype=np.uint32) << np.uint32(12)

        assert not runs_test(Sorted(), n=30_000).passed

    def test_craps_good(self):
        assert craps_test(GOOD(), n_games=50_000).passed

    def test_craps_floor(self):
        with pytest.raises(ValueError):
            craps_test(GOOD(), n_games=10)


class TestFullBattery:
    def test_battery_has_15_entries(self):
        assert len(DIEHARD_TEST_NAMES) == 15
        res = run_diehard(GOOD(), scale=0.1)
        assert res.num_tests == 15
        assert [r.name for r in res.results] == DIEHARD_TEST_NAMES

    def test_good_generator_passes_most(self):
        res = run_diehard(GOOD(), scale=0.1)
        assert res.num_passed >= 13

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            run_diehard(GOOD(), scale=0)

    def test_progress_callback(self):
        seen = []
        run_diehard(GOOD(), scale=0.1, progress=seen.append)
        assert len(seen) >= 10
