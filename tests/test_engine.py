"""Tests for the process-sharded generation engine."""

import os
import signal

import numpy as np
import pytest

from repro.core.parallel import AddressableExpanderPRNG
from repro.core.streams import derive_seed
from repro.engine import EngineConfig, ShardedEngine, serial_reference
from repro.engine.sharded import _make_feed
from repro.resilience.errors import WorkerFailedError
from repro.serve.session import SessionStream

CONFIG = EngineConfig(seed=3, shards=2, lanes=8, ring_slots=2)


def kill_shard(eng, i):
    proc = eng._procs[i]
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=5)
    assert not proc.is_alive()


class TestConfig:
    def test_defaults_validate(self):
        EngineConfig()

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="fixed-consumption"):
            EngineConfig(policy="bogus")

    def test_reject_policy_not_addressable(self):
        """'reject' consumes data-dependent chunks: engine refuses it."""
        with pytest.raises(ValueError, match="fixed-consumption"):
            EngineConfig(policy="reject")

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(shards=0)
        with pytest.raises(ValueError):
            EngineConfig(lanes=0)
        with pytest.raises(ValueError):
            EngineConfig(ring_slots=-1)
        with pytest.raises(ValueError):
            EngineConfig(fetch_timeout_s=0)

    def test_config_and_overrides_exclusive(self):
        with pytest.raises(TypeError, match="either a config"):
            ShardedEngine(EngineConfig(), shards=2)


class TestBulkStream:
    def test_matches_serial_reference(self):
        ref = serial_reference(CONFIG, 200)
        with ShardedEngine(CONFIG) as eng:
            np.testing.assert_array_equal(eng.generate(200), ref)

    def test_round_is_shard_major(self):
        """Round r of the stream = shard 0's round r, then shard 1's."""
        banks = [
            AddressableExpanderPRNG(
                num_threads=CONFIG.lanes,
                bit_source=_make_feed(CONFIG, derive_seed(CONFIG.seed, i)),
                policy=CONFIG.policy,
            )
            for i in range(2)
        ]
        with ShardedEngine(CONFIG) as eng:
            round0 = eng.generate(16)
        np.testing.assert_array_equal(round0[:8], banks[0].next_round())
        np.testing.assert_array_equal(round0[8:], banks[1].next_round())

    def test_negative_count_rejected(self):
        with ShardedEngine(CONFIG) as eng:
            with pytest.raises(ValueError):
                eng.generate(-1)

    def test_serve_only_pool_has_no_bulk_stream(self):
        cfg = EngineConfig(seed=3, shards=2, lanes=8, ring_slots=0)
        with ShardedEngine(cfg) as eng:
            with pytest.raises(RuntimeError, match="serve-only"):
                eng.generate(16)
            # ...but named streams still work.
            assert eng.fetch_stream(5, 4, 12).size == 12


class TestNamedStreams:
    def test_matches_in_process_bank(self):
        """A stream fetch is byte-identical to the same bank run locally."""
        seed, lanes = 41, 16
        local = AddressableExpanderPRNG(
            num_threads=lanes, bit_source=_make_feed(CONFIG, seed),
            policy=CONFIG.policy,
        )
        with ShardedEngine(CONFIG) as eng:
            np.testing.assert_array_equal(
                eng.fetch_stream(seed, lanes, 100), local.generate(100)
            )

    def test_explicit_offset_fetch(self):
        """fetch_stream(offset=...) serves any slice, even backwards."""
        seed, lanes = 41, 16
        local = AddressableExpanderPRNG(
            num_threads=lanes, bit_source=_make_feed(CONFIG, seed),
            policy=CONFIG.policy,
        )
        ref = local.generate(200)
        with ShardedEngine(CONFIG) as eng:
            np.testing.assert_array_equal(
                eng.fetch_stream(seed, lanes, 50, offset=120), ref[120:170]
            )
            # Default continues from where the explicit fetch ended.
            np.testing.assert_array_equal(
                eng.fetch_stream(seed, lanes, 30), ref[170:200]
            )
            # Backwards slice: no replay machinery, just a seek.
            np.testing.assert_array_equal(
                eng.fetch_stream(seed, lanes, 40, offset=7), ref[7:47]
            )

    def test_streams_are_independent(self):
        with ShardedEngine(CONFIG) as eng:
            a = eng.fetch_stream(6, 8, 64)
            b = eng.fetch_stream(7, 8, 64)
        assert not np.array_equal(a, b)

    def test_routing_is_stable(self):
        with ShardedEngine(CONFIG) as eng:
            assert eng.stream_shard(6) == 0
            assert eng.stream_shard(7) == 1

    def test_bad_lane_count_rejected(self):
        with ShardedEngine(CONFIG) as eng:
            with pytest.raises(ValueError):
                eng.fetch_stream(1, 0, 16)


class TestServeIntegration:
    def test_engine_backed_session_matches_in_process(self):
        """Moving a session onto the shard pool changes no values."""
        local = SessionStream("alice", master_seed=9, lanes=16)
        with ShardedEngine(
            EngineConfig(seed=9, shards=2, lanes=8, ring_slots=0)
        ) as eng:
            remote = SessionStream("alice", master_seed=9, lanes=16,
                                   engine=eng)
            np.testing.assert_array_equal(
                np.concatenate([remote.generate(40), remote.generate(60)]),
                local.generate(100),
            )
            assert remote.health == "OK"
            desc = remote.describe()
        assert desc["active_source"].startswith("engine-shard-")
        assert desc["words_served"] == 100


class TestFailure:
    def test_dead_shard_raises_worker_failed(self):
        cfg = EngineConfig(seed=3, shards=2, lanes=8, ring_slots=2,
                           fetch_timeout_s=3.0)
        with ShardedEngine(cfg) as eng:
            eng.generate(16)
            kill_shard(eng, 1)
            with pytest.raises(WorkerFailedError) as err:
                eng.generate(200)
            assert err.value.worker_index == 1
            assert eng.health == "FAILED"

    def test_bulk_restart_is_deterministic(self):
        cfg = EngineConfig(seed=3, shards=2, lanes=8, ring_slots=2,
                           fetch_timeout_s=3.0, auto_restart=True)
        ref = serial_reference(cfg, 150)
        with ShardedEngine(cfg) as eng:
            head = eng.generate(50)
            kill_shard(eng, 1)
            tail = eng.generate(100)
            assert eng.restarts >= 1
            assert eng.health == "DEGRADED"
        np.testing.assert_array_equal(np.concatenate([head, tail]), ref)

    def test_stream_restart_is_deterministic(self):
        cfg = EngineConfig(seed=3, shards=2, lanes=8, ring_slots=0,
                           fetch_timeout_s=3.0, auto_restart=True)
        seed, lanes = 40, 8  # seed % 2 == 0: shard 0 owns the stream
        local = AddressableExpanderPRNG(
            num_threads=lanes, bit_source=_make_feed(cfg, seed),
            policy=cfg.policy,
        )
        with ShardedEngine(cfg) as eng:
            head = eng.fetch_stream(seed, lanes, 30)
            kill_shard(eng, 0)
            tail = eng.fetch_stream(seed, lanes, 70)
        np.testing.assert_array_equal(
            np.concatenate([head, tail]), local.generate(100)
        )


class TestRingBursts:
    """Burst framing is transport-only: values, restarts and geometry
    must be invariant in ``ring_burst``."""

    def test_effective_burst_geometry(self):
        from repro.engine.sharded import MAX_ROUND_WORDS, _effective_burst

        assert _effective_burst(
            EngineConfig(seed=1, shards=1, lanes=8, ring_burst=8)
        ) == 8
        # Huge lanes: capped so one burst still fits a worker message.
        big = EngineConfig(
            seed=1, shards=1, lanes=MAX_ROUND_WORDS // 2, ring_burst=8
        )
        assert _effective_burst(big) == 2
        # Never below one round per slot.
        giant = EngineConfig(
            seed=1, shards=1, lanes=MAX_ROUND_WORDS, ring_burst=8
        )
        assert _effective_burst(giant) == 1

    def test_bad_burst_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(seed=1, shards=1, lanes=8, ring_burst=0)

    @pytest.mark.parametrize("burst", [1, 3, 8])
    def test_bulk_stream_invariant_in_burst(self, burst):
        cfg = EngineConfig(seed=3, shards=2, lanes=8, ring_slots=2,
                           ring_burst=burst)
        ref = serial_reference(cfg, 200)
        with ShardedEngine(cfg) as eng:
            assert eng.describe()["ring_burst"] == burst
            np.testing.assert_array_equal(eng.generate(200), ref)

    def test_restart_mid_burst_is_deterministic(self):
        """Kill a shard part-way through consuming a burst: the revived
        worker must resume at the next *round*, not the next burst."""
        cfg = EngineConfig(seed=3, shards=2, lanes=8, ring_slots=2,
                           ring_burst=4, fetch_timeout_s=3.0,
                           auto_restart=True)
        ref = serial_reference(cfg, 400)
        with ShardedEngine(cfg) as eng:
            # 88 words = 5.5 rounds/shard: shard cursors stop mid-burst.
            head = eng.generate(88)
            kill_shard(eng, 1)
            tail = eng.generate(312)
            assert eng.restarts >= 1
        np.testing.assert_array_equal(np.concatenate([head, tail]), ref)


class TestIntrospection:
    def test_ping(self):
        with ShardedEngine(CONFIG) as eng:
            assert eng.ping(0) and eng.ping(1)

    def test_describe(self):
        with ShardedEngine(CONFIG) as eng:
            eng.generate(16)
            eng.fetch_stream(1, 4, 8)
            doc = eng.describe()
        assert doc["shards"] == 2
        assert doc["lanes_per_shard"] == 8
        assert doc["rounds_assembled"] >= 1
        assert doc["streams"] == 1
        assert doc["health"] == "OK"

    def test_close_is_idempotent(self):
        eng = ShardedEngine(CONFIG)
        eng.close()
        eng.close()
        assert eng.shards_alive == [False, False]


class TestFetchSpans:
    def test_multi_span_round_matches_per_stream_references(self):
        """One fused fetch_spans call serves many streams across both
        shards, each byte-identical to its in-process bank."""
        streams = [(40, 8), (41, 16), (42, 8), (43, 4)]
        locals_ = {
            (seed, lanes): AddressableExpanderPRNG(
                num_threads=lanes, bit_source=_make_feed(CONFIG, seed),
                policy=CONFIG.policy,
            )
            for seed, lanes in streams
        }
        spans = [
            (seed, lanes, None, 50 + 10 * i)
            for i, (seed, lanes) in enumerate(streams)
        ]
        with ShardedEngine(CONFIG) as eng:
            results = eng.fetch_spans(spans)
        for (seed, lanes, _off, n), got in zip(spans, results):
            assert isinstance(got, np.ndarray), got
            np.testing.assert_array_equal(
                got, locals_[(seed, lanes)].generate(n)
            )

    def test_same_stream_spans_are_contiguous(self):
        """Two offset=None spans of one stream in a single batch
        continue each other, and fetch_stream continues after both."""
        seed, lanes = 41, 8
        local = AddressableExpanderPRNG(
            num_threads=lanes, bit_source=_make_feed(CONFIG, seed),
            policy=CONFIG.policy,
        )
        ref = local.generate(120)
        with ShardedEngine(CONFIG) as eng:
            a, b = eng.fetch_spans(
                [(seed, lanes, None, 30), (seed, lanes, None, 50)]
            )
            np.testing.assert_array_equal(a, ref[:30])
            np.testing.assert_array_equal(b, ref[30:80])
            np.testing.assert_array_equal(
                eng.fetch_stream(seed, lanes, 40), ref[80:120]
            )

    def test_explicit_offsets_and_word_cap(self):
        """Spans bigger than the per-round word cap split into multiple
        capped rounds without changing a byte."""
        import repro.engine.sharded as sharded_mod

        seed, lanes = 40, 8
        local = AddressableExpanderPRNG(
            num_threads=lanes, bit_source=_make_feed(CONFIG, seed),
            policy=CONFIG.policy,
        )
        ref = local.generate(600)
        old_cap = sharded_mod.MAX_ROUND_WORDS
        sharded_mod.MAX_ROUND_WORDS = 100
        try:
            with ShardedEngine(CONFIG) as eng:
                results = eng.fetch_spans(
                    [
                        (seed, lanes, 100, 80),
                        (seed, lanes, 0, 90),
                        (seed, lanes, 300, 300),
                    ]
                )
        finally:
            sharded_mod.MAX_ROUND_WORDS = old_cap
        np.testing.assert_array_equal(results[0], ref[100:180])
        np.testing.assert_array_equal(results[1], ref[0:90])
        np.testing.assert_array_equal(results[2], ref[300:600])

    def test_empty_and_invalid_spans(self):
        with ShardedEngine(CONFIG) as eng:
            assert eng.fetch_spans([]) == []
            with pytest.raises(ValueError):
                eng.fetch_spans([(1, 0, None, 8)])
            with pytest.raises(ValueError):
                eng.fetch_spans([(1, 4, None, -1)])
            with pytest.raises(ValueError):
                eng.fetch_spans([(1, 4, -5, 8)])

    def test_restart_mid_spans_is_deterministic(self):
        """A shard killed before a fused round is re-served exactly
        (absolute offsets make the retry byte-identical)."""
        cfg = EngineConfig(seed=3, shards=2, lanes=8, ring_slots=0,
                           fetch_timeout_s=3.0, auto_restart=True)
        seed, lanes = 40, 8  # shard 0 owns the stream
        local = AddressableExpanderPRNG(
            num_threads=lanes, bit_source=_make_feed(cfg, seed),
            policy=cfg.policy,
        )
        ref = local.generate(100)
        with ShardedEngine(cfg) as eng:
            head = eng.fetch_spans([(seed, lanes, None, 30)])[0]
            kill_shard(eng, 0)
            tail = eng.fetch_spans(
                [(seed, lanes, None, 40), (seed, lanes, None, 30)]
            )
            assert eng.restarts >= 1
        np.testing.assert_array_equal(head, ref[:30])
        np.testing.assert_array_equal(tail[0], ref[30:70])
        np.testing.assert_array_equal(tail[1], ref[70:100])
