"""Cross-cutting coverage: CLI NIST path, distribution/generator combos,
and small edge cases not exercised elsewhere."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hybrid_adapter import HybridPRNG
from repro.baselines.mt19937 import MT19937
from repro.bitsource import SplitMix64Source
from repro.cli import main
from repro.core.distributions import exponential, geometric, normal, poisson
from repro.quality.nist.helpers import igamc_pvalue


class TestCliNist:
    def test_nist_battery_via_cli(self, capsys):
        rc = main([
            "quality", "--generator", "Mersenne Twister",
            "--battery", "nist", "--scale", "0.2",
        ])
        out = capsys.readouterr().out
        assert "NIST SP800-22" in out
        assert rc in (0, 1)


class TestHelpers:
    def test_igamc_validation(self):
        with pytest.raises(ValueError):
            igamc_pvalue(0, 1.0)

    def test_igamc_extremes(self):
        assert igamc_pvalue(5, 0.0) == pytest.approx(1.0)
        assert igamc_pvalue(5, 1000.0) < 1e-10


class TestDistributionsOnHybrid:
    """The derived distributions must work on the paper's generator."""

    def test_normal_on_hybrid(self):
        gen = HybridPRNG(seed=1, num_threads=1024,
                         bit_source=SplitMix64Source(1))
        x = normal(gen, 30_000)
        assert abs(x.mean()) < 0.03
        assert abs(x.std() - 1) < 0.03

    def test_poisson_on_hybrid(self):
        gen = HybridPRNG(seed=1, num_threads=1024,
                         bit_source=SplitMix64Source(2))
        x = poisson(gen, 20_000, 3.0)
        assert abs(x.mean() - 3.0) < 0.1


class TestDistributionProperties:
    @given(st.floats(min_value=0.02, max_value=0.98))
    @settings(max_examples=15, deadline=None)
    def test_geometric_mean_any_p(self, p):
        x = geometric(MT19937(int(p * 1e6)), 60_000, p)
        assert x.mean() == pytest.approx(1.0 / p, rel=0.08)

    @given(st.floats(min_value=0.1, max_value=20.0))
    @settings(max_examples=15, deadline=None)
    def test_exponential_mean_any_rate(self, rate):
        x = exponential(MT19937(int(rate * 1e4)), 60_000, rate)
        assert x.mean() == pytest.approx(1.0 / rate, rel=0.08)


class TestGpusimEdges:
    def test_environment_run_empty(self):
        from repro.gpusim.events import Environment

        assert Environment().run() == 0.0

    def test_process_return_value_propagates(self):
        from repro.gpusim.events import Environment

        env = Environment()
        got = []

        def child():
            yield env.timeout(1)
            return "payload"

        def parent():
            value = yield env.process(child())
            got.append(value)

        env.process(parent())
        env.run()
        assert got == ["payload"]

    def test_timeline_device_intervals_sorted(self):
        from repro.gpusim.timeline import Timeline

        tl = Timeline()
        tl.add("CPU", 5, 6)
        tl.add("CPU", 0, 1)
        ivs = tl.device_intervals("CPU")
        assert [iv.start for iv in ivs] == [0, 5]
