"""Tests for generator state capture/restore."""

import json

import numpy as np
import pytest

from repro.bitsource import AnsiCLcg, GlibcRandom, RawCounterSource, SplitMix64Source
from repro.core.generator import ExpanderWalkPRNG
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.state import capture_state, restore_state


class TestRoundTrip:
    @pytest.mark.parametrize(
        "feed",
        [
            lambda: SplitMix64Source(5),
            lambda: GlibcRandom(5),
            lambda: AnsiCLcg(5),
            lambda: RawCounterSource(5),
        ],
    )
    def test_scalar_generator_resumes_exactly(self, feed):
        a = ExpanderWalkPRNG(bit_source=feed())
        a.next_batch(7)
        snap = capture_state(a)
        expected = a.next_batch(10)

        b = ExpanderWalkPRNG(bit_source=feed())
        restore_state(b, snap)
        assert np.array_equal(b.next_batch(10), expected)

    def test_parallel_generator_resumes_exactly(self):
        a = ParallelExpanderPRNG(num_threads=128, bit_source=SplitMix64Source(9))
        a.generate(500)
        snap = capture_state(a)
        expected = a.generate(500)

        b = ParallelExpanderPRNG(num_threads=128, bit_source=SplitMix64Source(1))
        restore_state(b, snap)
        assert np.array_equal(b.generate(500), expected)

    def test_snapshot_is_json_serializable(self):
        a = ExpanderWalkPRNG(bit_source=GlibcRandom(3))
        a.get_next_rand()
        snap = capture_state(a)
        roundtripped = json.loads(json.dumps(snap))
        b = ExpanderWalkPRNG(bit_source=GlibcRandom(1))
        restore_state(b, roundtripped)
        assert b.get_next_rand() == a.get_next_rand()

    def test_counters_restored(self):
        a = ParallelExpanderPRNG(num_threads=32, bit_source=SplitMix64Source(2))
        a.generate(100)
        snap = capture_state(a)
        b = ParallelExpanderPRNG(num_threads=32, bit_source=SplitMix64Source(0))
        restore_state(b, snap)
        assert b.numbers_generated == a.numbers_generated
        assert b.bits_consumed == a.bits_consumed


class TestValidation:
    def test_wrong_kind(self):
        a = ExpanderWalkPRNG(bit_source=SplitMix64Source(1))
        snap = capture_state(a)
        b = ParallelExpanderPRNG(num_threads=4, bit_source=SplitMix64Source(1))
        with pytest.raises(TypeError, match="snapshot is for"):
            restore_state(b, snap)

    def test_wrong_thread_count(self):
        a = ParallelExpanderPRNG(num_threads=8, bit_source=SplitMix64Source(1))
        snap = capture_state(a)
        b = ParallelExpanderPRNG(num_threads=16, bit_source=SplitMix64Source(1))
        with pytest.raises(ValueError, match="walkers"):
            restore_state(b, snap)

    def test_wrong_walk_length(self):
        a = ExpanderWalkPRNG(bit_source=SplitMix64Source(1), walk_length=32)
        snap = capture_state(a)
        b = ExpanderWalkPRNG(bit_source=SplitMix64Source(1), walk_length=64)
        with pytest.raises(ValueError, match="walk length"):
            restore_state(b, snap)

    def test_wrong_feed_type(self):
        a = ExpanderWalkPRNG(bit_source=SplitMix64Source(1))
        snap = capture_state(a)
        b = ExpanderWalkPRNG(bit_source=GlibcRandom(1))
        with pytest.raises(TypeError):
            restore_state(b, snap)

    def test_unsupported_generator(self):
        with pytest.raises(TypeError):
            capture_state(object())

    def test_bad_version(self):
        a = ExpanderWalkPRNG(bit_source=SplitMix64Source(1))
        snap = capture_state(a)
        snap["version"] = 99
        with pytest.raises(ValueError, match="version"):
            restore_state(a, snap)

    def test_custom_source_protocol(self):
        class MySource(SplitMix64Source):
            def __getstate_dict__(self):
                return {"s": int(self._state)}

            def __setstate_dict__(self, data):
                self._state = np.uint64(data["s"])

        a = ExpanderWalkPRNG(bit_source=MySource(4))
        a.get_next_rand()
        snap = capture_state(a)
        assert snap["source"]["kind"] == "custom"
        b = ExpanderWalkPRNG(bit_source=MySource(0))
        restore_state(b, snap)
        assert b.get_next_rand() == a.get_next_rand()
