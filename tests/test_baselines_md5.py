"""Tests for the MD5 compression function and the CUDPP-style PRNG."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.md5_rand import Md5Rand, md5_compress, md5_hex

RFC1321_VECTORS = {
    b"": "d41d8cd98f00b204e9800998ecf8427e",
    b"a": "0cc175b9c0f1b6a831c399e269772661",
    b"abc": "900150983cd24fb0d6963f7d28e17f72",
    b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
    b"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789":
        "d174ab98d277d9f5a5611c2c9f419d9f",
    b"1234567890" * 8: "57edf4a22be3c955ac49da2e2107b67a",
}


class TestMd5KnownAnswers:
    @pytest.mark.parametrize("msg,digest", RFC1321_VECTORS.items())
    def test_rfc1321(self, msg, digest):
        assert md5_hex(msg) == digest

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=60)
    def test_matches_hashlib(self, data):
        assert md5_hex(data) == hashlib.md5(data).hexdigest()

    def test_compress_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            md5_compress(np.zeros((4, 15), dtype=np.uint32))

    def test_compress_vectorization_consistent(self):
        """Hashing n blocks at once equals hashing them one by one."""
        rng = np.random.Generator(np.random.PCG64(3))
        blocks = rng.integers(0, 2**32, size=(16, 16), dtype=np.uint32)
        batched = md5_compress(blocks)
        single = np.concatenate(
            [md5_compress(blocks[i : i + 1]) for i in range(16)]
        )
        assert np.array_equal(batched, single)


class TestMd5Rand:
    def test_deterministic(self):
        assert np.array_equal(
            Md5Rand(seed=5).u32_array(100), Md5Rand(seed=5).u32_array(100)
        )

    def test_seed_sensitivity(self):
        assert not np.array_equal(
            Md5Rand(seed=5).u32_array(100), Md5Rand(seed=6).u32_array(100)
        )

    def test_reseed(self):
        g = Md5Rand(seed=5)
        first = g.u32_array(12).copy()
        g.u32_array(1000)
        g.reseed(5)
        assert np.array_equal(g.u32_array(12), first)

    def test_partial_digest_requests(self):
        """Partial digests are buffered: request splitting is invisible."""
        a = Md5Rand(seed=9)
        b = Md5Rand(seed=9)
        x = np.concatenate([a.u32_array(3), a.u32_array(5), a.u32_array(9)])
        y = b.u32_array(17)
        assert np.array_equal(x, y)

    def test_uniformity_sane(self):
        u = Md5Rand(seed=2).uniform(100_000)
        assert abs(u.mean() - 0.5) < 0.005

    def test_bit_balance(self):
        bits = Md5Rand(seed=2).bits_stream(200_000)
        assert abs(bits.mean() - 0.5) < 0.005

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            Md5Rand(lanes=0)

    def test_zero_request(self):
        assert Md5Rand(seed=1).u32_array(0).size == 0
