"""Tests for the multicore (multiprocessing) generation variant."""

import numpy as np
import pytest

from repro.hybrid.multiproc import multicore_generate, serial_equivalent


class TestCorrectness:
    def test_matches_serial_equivalent(self):
        par = multicore_generate(5000, workers=2, seed=5, lanes=256)
        ser = serial_equivalent(5000, workers=2, seed=5, lanes=256)
        assert np.array_equal(par, ser)

    def test_single_worker_inline(self):
        out = multicore_generate(1000, workers=1, seed=3, lanes=128)
        assert out.size == 1000

    def test_uneven_split(self):
        out = multicore_generate(1001, workers=3, seed=3, lanes=128)
        assert out.size == 1001

    def test_more_workers_than_numbers(self):
        out = multicore_generate(2, workers=4, seed=3, lanes=64)
        assert out.size == 2

    def test_deterministic(self):
        a = multicore_generate(2000, workers=2, seed=9, lanes=128)
        b = multicore_generate(2000, workers=2, seed=9, lanes=128)
        assert np.array_equal(a, b)

    def test_worker_streams_distinct(self):
        out = serial_equivalent(4000, workers=2, seed=9, lanes=128)
        first, second = out[:2000], out[2000:]
        assert not np.array_equal(first, second)
        # No value collisions between substreams (64-bit outputs).
        assert np.unique(out).size == 4000

    def test_validation(self):
        with pytest.raises(ValueError):
            multicore_generate(0, workers=2)
        with pytest.raises(ValueError):
            multicore_generate(10, workers=0)


class TestStatistics:
    def test_concatenated_stream_uniform(self):
        out = multicore_generate(20_000, workers=2, seed=4, lanes=512)
        u = out.astype(np.float64) / 2**64
        assert abs(u.mean() - 0.5) < 0.01
