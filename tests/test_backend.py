"""The pluggable array-backend layer.

Pins the registry contract (resolution order, cached unavailability,
default pinning), the numpy backend's zero-overhead identity semantics,
the non-uniform-op semantics every backend must honour (logical shifts,
unsigned compares, bit-preserving pack), the kernel purity lint, and
the gpusim calibration bridge.  Device-parity tests run on every
*available* registered backend and skip cleanly where the library or
hardware is absent -- the CI backend matrix turns them on where it can.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import backend as backend_pkg
from repro.backend import (
    Backend,
    BackendUnavailableError,
    NumPyBackend,
    available_backends,
    backend_names,
    backend_of,
    get_backend,
    host_np,
    register_backend,
    set_default_backend,
)

REPO = Path(__file__).resolve().parent.parent


def _available(name):
    return available_backends().get(name, False)


def backend_params():
    """Every registered backend, unavailable ones as clean skips."""
    return [
        pytest.param(name, marks=() if _available(name) else pytest.mark.skip(
            reason=f"backend {name!r} not available here"))
        for name in backend_names()
    ]


class TestRegistry:
    def test_numpy_is_default_and_always_available(self):
        be = get_backend()
        assert be.name == "numpy"
        assert be.is_host
        assert be.xp is np
        assert available_backends()["numpy"] is True

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_raises(self):
        with pytest.raises(BackendUnavailableError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_backend_instance_passes_through(self):
        be = get_backend("numpy")
        assert get_backend(be) is be

    def test_set_default_backend(self):
        try:
            set_default_backend("numpy")
            assert get_backend().name == "numpy"
            with pytest.raises(BackendUnavailableError):
                set_default_backend("no-such-backend")
            assert get_backend().name == "numpy", "bad set must not stick"
        finally:
            set_default_backend(None)

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend().name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
        with pytest.raises(BackendUnavailableError):
            get_backend()

    def test_unavailable_failure_is_cached(self):
        calls = []

        def flaky_factory():
            calls.append(1)
            raise BackendUnavailableError("nope")

        register_backend("_test_flaky", flaky_factory)
        try:
            for _ in range(3):
                with pytest.raises(BackendUnavailableError):
                    get_backend("_test_flaky")
            assert len(calls) == 1, "probe must run once, then cache"
        finally:
            backend_pkg._factories.pop("_test_flaky", None)
            backend_pkg._failures.pop("_test_flaky", None)

    def test_host_np_is_numpy(self):
        assert host_np is np

    def test_backend_of(self):
        arr = np.arange(4, dtype=np.uint64)
        assert backend_of(arr).name == "numpy"
        with pytest.raises(TypeError):
            backend_of(object())


class TestNumPyBackend:
    def test_transfers_are_identity(self):
        be = get_backend("numpy")
        arr = np.arange(8, dtype=np.uint64)
        assert be.from_host(arr) is arr
        assert be.to_host(arr) is arr
        assert be.constant(arr) is arr

    def test_pack_pairs_to_host(self):
        be = get_backend("numpy")
        x = np.array([1, 0xFFFFFFFF], dtype=np.uint32)
        y = np.array([2, 0xDEADBEEF], dtype=np.uint32)
        got = be.pack_pairs_to_host(x, y)
        assert got.dtype == np.uint64
        np.testing.assert_array_equal(
            got, np.array([(1 << 32) | 2, (0xFFFFFFFF << 32) | 0xDEADBEEF],
                          dtype=np.uint64)
        )

    def test_rshift_and_ge_are_unsigned(self):
        be = get_backend("numpy")
        top = np.array([1 << 63, (1 << 64) - 1, 0], dtype=np.uint64)
        np.testing.assert_array_equal(
            be.rshift_u64(top, 63), np.array([1, 1, 0], dtype=np.uint64)
        )
        np.testing.assert_array_equal(
            be.ge_u64(top, 1 << 63), np.array([True, True, False])
        )

    def test_swap_rows(self):
        be = get_backend("numpy")
        a2 = np.array([[1, 2], [3, 4]], dtype=np.uint32)
        np.testing.assert_array_equal(
            be.swap_rows(a2), np.array([[3, 4], [1, 2]], dtype=np.uint32)
        )

    def test_ndtri_matches_scipy(self):
        scipy_special = pytest.importorskip("scipy.special")
        be = get_backend("numpy")
        u = np.array([0.1, 0.5, 0.975])
        np.testing.assert_allclose(be.ndtri(u), scipy_special.ndtri(u))


class TestConstantMemo:
    def test_memoized_by_object_identity(self):
        class Probe(NumPyBackend):
            name = "_probe"
            uploads = 0

            def from_host(self, arr):
                Probe.uploads += 1
                return arr

            def constant(self, host_arr):  # restore base memoization
                return Backend.constant(self, host_arr)

        be = Probe()
        table = np.arange(16, dtype=np.float64)
        assert be.constant(table) is be.constant(table)
        assert Probe.uploads == 1
        other = np.arange(16, dtype=np.float64)
        be.constant(other)
        assert Probe.uploads == 2, "distinct objects upload separately"


@pytest.mark.parametrize("name", backend_params())
class TestBackendParity:
    """Semantics every available backend must share with numpy."""

    def test_roundtrip_bits(self, name):
        be = get_backend(name)
        words = np.array([0, 1, (1 << 64) - 1, 0x8000000000000000,
                          0x0123456789ABCDEF], dtype=np.uint64)
        back = be.to_host(be.from_host(words))
        np.testing.assert_array_equal(back, words)
        u32 = np.array([0, 1, 0xFFFFFFFF, 0x80000000], dtype=np.uint32)
        np.testing.assert_array_equal(be.to_host(be.from_host(u32)), u32)

    def test_rshift_u64_is_logical(self, name):
        be = get_backend(name)
        words = np.array([(1 << 64) - 1, 1 << 63, 12345], dtype=np.uint64)
        dev = be.from_host(words)
        for k in (0, 1, 11, 32, 63):
            got = be.to_host(be.rshift_u64(dev, k))
            np.testing.assert_array_equal(
                got.astype(np.uint64), words >> np.uint64(k)
            )

    def test_ge_u64_is_unsigned(self, name):
        be = get_backend(name)
        words = np.array([0, 1, 1 << 63, (1 << 64) - 1, 77],
                         dtype=np.uint64)
        dev = be.from_host(words)
        for k in (0, 1, 77, 1 << 63, (1 << 64) - 1):
            got = np.asarray(be.to_host(be.ge_u64(dev, k))).astype(bool)
            np.testing.assert_array_equal(got, words >= np.uint64(k))

    def test_pack_pairs_to_host(self, name):
        be = get_backend(name)
        x = np.array([0, 1, 0xFFFFFFFF, 0xDEAD], dtype=np.uint32)
        y = np.array([5, 0xFFFFFFFF, 0, 0xBEEF], dtype=np.uint32)
        got = be.pack_pairs_to_host(be.from_host(x), be.from_host(y))
        want = (x.astype(np.uint64) << np.uint64(32)) | y
        assert isinstance(got, np.ndarray) and got.dtype == np.uint64
        np.testing.assert_array_equal(got, want)

    def test_walk_stream_bit_identical(self, name):
        """The whole fused hot path on this backend vs the numpy
        golden path -- the tentpole's core invariant."""
        from repro.bitsource.glibc import GlibcRandom
        from repro.core.parallel import ParallelExpanderPRNG

        def run(backend):
            return ParallelExpanderPRNG(
                num_threads=64,
                bit_source=GlibcRandom(7, blocked=True),
                policy="mod", fused=True, backend=backend,
            ).generate(1024)

        np.testing.assert_array_equal(run(name), run("numpy"))


class TestTransferSpans:
    def test_device_transfers_traced(self):
        """Non-host transfers must hit the obs TRANSFER span; pinned
        against a stub so it holds even with no device library."""
        from repro.backend.base import _DeviceBackend
        from repro import obs

        class Loopback(_DeviceBackend):
            name = "_loopback"
            xp = np

            def _upload(self, arr):
                return arr.copy()

            def _download(self, arr):
                return arr.copy()

        be = Loopback()
        with obs.observed() as (_registry, tracer):
            be.to_host(be.from_host(np.arange(4, dtype=np.uint64)))
        names = [s.name for s in tracer.spans]
        assert names.count("transfer") == 2
        dirs = sorted(
            s.attrs["direction"] for s in tracer.spans
            if s.name == "transfer"
        )
        assert dirs == ["d2h", "h2d"]


class TestBackendLint:
    def test_kernel_modules_are_clean(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint_backend.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_lint_catches_direct_import(self, tmp_path, monkeypatch):
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "walk.py").write_text("import numpy as np\n")
        (tmp_path / "src" / "repro" / "dist").mkdir()
        (tmp_path / "src" / "repro" / "dist" / "transforms.py").write_text(
            "from numpy.linalg import svd\n"
        )
        (bad / "generator.py").write_text(
            "from repro.backend import host_np as np\n"
        )
        tools = tmp_path / "tools"
        tools.mkdir()
        tools.joinpath("lint_backend.py").write_text(
            (REPO / "tools" / "lint_backend.py").read_text()
        )
        proc = subprocess.run(
            [sys.executable, str(tools / "lint_backend.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "core/walk.py:1" in proc.stdout
        assert "dist/transforms.py:1" in proc.stdout
        assert "generator.py" not in proc.stdout


class TestCalibrationBridge:
    def test_backend_calibration_report(self):
        from repro.gpusim.calibration import backend_calibration_report

        rep = backend_calibration_report(lanes=128, rounds=4)
        assert rep["backend"] == "numpy"
        assert rep["numbers"] == 128 * 4
        assert rep["ns_per_number"] > 0
        assert rep["predicted_generate_ns"] > 0
        assert rep["measured_over_predicted"] == pytest.approx(
            rep["ns_per_number"] / rep["predicted_generate_ns"]
        )
        assert rep["speedup_vs_sim_mt"] > 0
