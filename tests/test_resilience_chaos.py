"""Tests for the chaos harness (run_chaos) and the ``chaos`` fixture."""

import numpy as np
import pytest

from repro.bitsource.glibc import GlibcRandom
from repro.resilience import FeedFailedError, FeedHealth, SupervisedFeed
from repro.resilience.chaos import ChaosResult, build_chaos_feed, run_chaos
from repro.resilience.faults import FaultyBitSource

NOSLEEP = lambda s: None


class TestBuildChaosFeed:
    def test_none_profile_is_value_transparent(self):
        feed = build_chaos_feed("none", seed=7, sleep=NOSLEEP)
        assert np.array_equal(feed.words64(512),
                              GlibcRandom(7).words64(512))

    def test_chain_shape(self):
        feed = build_chaos_feed("flaky", seed=1, sleep=NOSLEEP)
        names = [s.name for s in feed.chain]
        assert names[0].startswith("faulty(glibc-rand")
        assert names[1:] == ["splitmix64", "os-entropy"]

    def test_fatal_chain_has_no_healthy_member(self):
        feed = build_chaos_feed("fatal", seed=1, sleep=NOSLEEP)
        assert all(isinstance(s, FaultyBitSource) for s in feed.chain)


class TestRunChaos:
    def test_none_profile_survives_clean(self):
        result = run_chaos("none", n=20_000, num_threads=256,
                           sleep=NOSLEEP)
        assert result.survived and result.exit_code == 0
        res = result.report.sections["resilience"]
        assert res["health"] == "OK"
        assert res["retries"] == 0 and res["failovers"] == 0
        assert result.numbers == 20_000

    def test_failover_profile_absorbed_and_recorded(self):
        result = run_chaos("failover", n=50_000, num_threads=256,
                           sleep=NOSLEEP)
        assert result.survived
        res = result.report.sections["resilience"]
        assert res["failovers"] >= 1
        assert res["health"] == "DEGRADED"
        # The switch point is in the report, with the failing source named.
        event = res["failover_events"][0]
        assert event["from"].startswith("faulty(glibc-rand")
        assert event["at_word"] >= 0

    def test_flaky_profile_retries_with_small_batches(self):
        # Small batches force many words64 calls so the injection
        # schedule actually fires within a modest n.
        result = run_chaos("flaky", n=50_000, num_threads=256,
                           batch_words=1 << 10, sleep=NOSLEEP)
        assert result.survived
        assert result.report.sections["resilience"]["retries"] > 0

    def test_fatal_profile_fails_with_diagnosis(self):
        result = run_chaos("fatal", n=20_000, num_threads=256,
                           sleep=NOSLEEP)
        assert not result.survived and result.exit_code == 1
        assert isinstance(result.error, FeedFailedError)
        failure = result.report.sections["failure"]
        assert failure["error"] == "FeedFailedError"
        assert "exhausted" in failure["message"]
        assert result.report.sections["resilience"]["health"] == "FAILED"

    def test_async_feed_path(self):
        result = run_chaos("failover", n=50_000, num_threads=256,
                           async_feed=True, sleep=NOSLEEP)
        assert result.survived
        assert result.report.sections["resilience"]["failovers"] >= 1

    def test_async_feed_fatal_does_not_hang(self):
        result = run_chaos("fatal", n=20_000, num_threads=256,
                           async_feed=True, sleep=NOSLEEP)
        assert not result.survived
        assert isinstance(result.error, FeedFailedError)

    def test_deterministic(self):
        def drill():
            r = run_chaos("failover", n=50_000, num_threads=256,
                          sleep=NOSLEEP)
            res = r.report.sections["resilience"]
            return (r.survived, res["retries"], res["failovers"],
                    res["health"])

        assert drill() == drill()

    def test_result_dataclass(self):
        result = run_chaos("none", n=5_000, num_threads=256, sleep=NOSLEEP)
        assert isinstance(result, ChaosResult)
        assert result.profile == "none"
        assert result.error is None


class TestChaosFixture:
    def test_plain_faulty_source(self, chaos):
        src = chaos("none")
        assert isinstance(src, FaultyBitSource)
        assert src.words64(16).size == 16

    def test_supervised_chain_survives_failover(self, chaos):
        feed = chaos("failover", supervised=True)
        assert isinstance(feed, SupervisedFeed)
        for _ in range(10):
            assert feed.words64(64).size == 64
        assert feed.stats.snapshot()["failovers"] == 1
        assert feed.health is FeedHealth.DEGRADED

    def test_fatal_primary_fails_over_to_healthy_fallback(self, chaos):
        feed = chaos("fatal", supervised=True)
        assert feed.words64(64).size == 64
        assert feed.stats.snapshot()["failovers"] == 1

    def test_fatal_chain_without_fallbacks_exhausts(self, chaos):
        feed = chaos("fatal", supervised=True, fallbacks=[])
        with pytest.raises(FeedFailedError):
            feed.words64(64)
