"""End-to-end tests of the RNG service: live server, real sockets.

Each test boots an :class:`RNGServer` on an ephemeral port via
``serve_background`` (its own event loop on a daemon thread) and talks
to it with blocking clients or raw sockets -- the same path production
consumers use.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro import obs
from repro.bitsource.counter import SplitMix64Source
from repro.resilience.faults import FaultyBitSource
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerBusyError,
    serve_background,
)
from repro.serve.session import SessionStream


def _quiet_faulty(profile):
    def factory(seed):
        return FaultyBitSource(
            SplitMix64Source(seed), profile, sleep=lambda s: None
        )

    return factory


class TestEndToEnd:
    def test_served_stream_matches_in_process_reference(self):
        """The network boundary must not change a single bit: a session's
        served numbers equal the same SessionStream computed locally."""
        config = ServeConfig(master_seed=11)
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="ref") as client:
                served = client.fetch(300)
        reference = SessionStream("ref", master_seed=11).generate(300)
        np.testing.assert_array_equal(served, reference)

    def test_fetch_sizing_is_stream_transparent(self):
        with serve_background(ServeConfig(master_seed=11)) as h:
            with ServeClient(h.host, h.port, session="split") as c:
                split = np.concatenate([c.fetch(n) for n in (7, 64, 29)])
            with ServeClient(h.host, h.port, session="bulk2") as c:
                pass  # unrelated session must not disturb the first
        reference = SessionStream("split", master_seed=11).generate(100)
        np.testing.assert_array_equal(split, reference)

    def test_session_resumes_across_reconnect(self):
        with serve_background(ServeConfig(master_seed=11)) as h:
            with ServeClient(h.host, h.port, session="resume") as c:
                first = c.fetch(40)
            with ServeClient(h.host, h.port, session="resume") as c:
                second = c.fetch(40)
        reference = SessionStream("resume", master_seed=11).generate(80)
        np.testing.assert_array_equal(
            np.concatenate([first, second]), reference
        )

    def test_restart_reproduces_stream(self):
        config = ServeConfig(master_seed=21)
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="alice") as c:
                before = c.fetch(128)
        with serve_background(ServeConfig(master_seed=21)) as h:
            with ServeClient(h.host, h.port, session="alice") as c:
                after = c.fetch(128)
        np.testing.assert_array_equal(before, after)

    def test_concurrent_sessions_disjoint_and_healthy(self):
        n_clients, per_fetch = 12, 256
        results, errors = {}, []

        def worker(i):
            try:
                with ServeClient(h.host, h.port, session=f"c{i}") as c:
                    results[i] = c.fetch(per_fetch)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        with serve_background(ServeConfig(master_seed=5)) as h:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            with ServeClient(h.host, h.port) as c:
                status = c.status()
        assert not errors
        assert len(results) == n_clients
        seen = set()
        for values in results.values():
            chunk = set(map(int, values))
            assert len(chunk) == per_fetch
            assert not seen & chunk, "cross-session stream overlap"
            seen |= chunk
        assert status["server"]["health"] == "OK"
        assert status["server"]["numbers_total"] >= n_clients * per_fetch


class TestBackpressure:
    def test_rate_limit_returns_busy(self):
        config = ServeConfig(master_seed=1, rate=50.0, burst=64)
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="greedy") as c:
                assert c.fetch(64).size == 64  # burst drained
                with pytest.raises(ServerBusyError, match="rate-limited"):
                    c.fetch(64)
                status = c.status()
        assert status["server"]["busy_total"] >= 1

    def test_busy_is_retryable(self):
        config = ServeConfig(master_seed=1, rate=2000.0, burst=64)
        with serve_background(config) as h:
            with ServeClient(
                h.host, h.port, session="patient", retries=8, backoff_s=0.05
            ) as c:
                assert c.fetch(64).size == 64
                # Bucket is empty now; the retry budget must absorb it.
                assert c.fetch(32).size == 32

    def test_global_queue_cap_sheds_load(self):
        """With one slow worker and a tiny global queue, a synchronized
        burst must get explicit BUSY responses, not unbounded buffering."""

        class SlowSource(SplitMix64Source):
            def words64(self, n):
                import time as _time

                _time.sleep(0.05)
                return super().words64(n)

        n_clients = 8
        config = ServeConfig(
            master_seed=1,
            source_factory=lambda seed: SlowSource(seed),
            failover=False,
            max_global_queue=2,
            max_session_queue=64,
            workers=1,
            batch_window_s=0.0,
            max_batch=1,
        )
        busy, served, errors = [], [], []
        barrier = threading.Barrier(n_clients)

        def worker(i):
            try:
                with ServeClient(h.host, h.port, session=f"s{i}") as c:
                    # HELLO built the (slow) session; now fire together so
                    # all fetches hit the 1-worker/2-slot queue at once.
                    barrier.wait(timeout=60)
                    served.append(c.fetch(640))
            except ServerBusyError as exc:
                busy.append(str(exc))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        with serve_background(config) as h:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=90)
            with ServeClient(h.host, h.port) as c:
                status = c.status()
        assert not errors
        assert busy, "no request was shed despite a full queue"
        assert any("queue full" in b for b in busy)
        assert status["server"]["busy_total"] >= len(busy)
        # The ones that got through are correct and complete.
        assert served
        for values in served:
            assert values.size == 640


class TestDegradation:
    def test_dying_feed_degrades_sessions_not_service(self):
        config = ServeConfig(
            master_seed=1, source_factory=_quiet_faulty("failover")
        )
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="sick") as c:
                for _ in range(6):
                    assert c.fetch(256).size == 256
                status = c.status()
        assert status["session"]["health"] == "DEGRADED"
        assert status["server"]["health"] == "DEGRADED"
        assert not status["session"]["active_source"].startswith("faulty")

    def test_healthy_sessions_unaffected_by_degraded_one(self):
        config = ServeConfig(
            master_seed=1, source_factory=_quiet_faulty("failover")
        )
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="sick") as sick, \
                 ServeClient(h.host, h.port, session="fine") as fine:
                for _ in range(6):
                    sick.fetch(256)
                values = fine.fetch(64)
        # "fine" went through the same failover (shared profile), but the
        # service kept serving both sessions -- that is the guarantee.
        assert values.size == 64


class TestProtocolSurface:
    def test_fetch_before_hello_is_an_error_not_a_disconnect(self):
        from repro.serve import protocol as proto

        with serve_background(ServeConfig()) as h:
            sock = socket.create_connection((h.host, h.port), timeout=10)
            try:
                sock.sendall(proto.pack_fetch(4))
                opcode, payload = proto.read_frame_socket(sock)
                assert opcode == proto.OP_ERROR
                assert b"HELLO" in payload
                # Connection still usable: HELLO then FETCH succeeds.
                sock.sendall(proto.pack_hello("late"))
                opcode, _ = proto.read_frame_socket(sock)
                assert opcode == proto.OP_JSON
                sock.sendall(proto.pack_fetch(4))
                opcode, payload = proto.read_frame_socket(sock)
                assert opcode == proto.OP_VALUES
                assert len(payload) == 32
            finally:
                sock.close()

    def test_oversized_fetch_rejected(self):
        config = ServeConfig(max_fetch=1000)
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="big") as c:
                from repro.serve.protocol import ServeError

                with pytest.raises(ServeError, match="fetch count"):
                    c.fetch(4096)
                assert c.fetch(1000).size == 1000

    def test_json_lines_debug_mode(self):
        with serve_background(ServeConfig(master_seed=11)) as h:
            sock = socket.create_connection((h.host, h.port), timeout=10)
            f = sock.makefile("rwb")
            try:
                def ask(doc):
                    f.write((json.dumps(doc) + "\n").encode())
                    f.flush()
                    return json.loads(f.readline())

                hello = ask({"op": "hello", "session": "dbg"})
                assert hello["ok"] and hello["op"] == "hello"
                fetched = ask({"op": "fetch", "n": 8})
                assert fetched["ok"] and len(fetched["values"]) == 8
                status = ask({"op": "status"})
                assert status["server"]["sessions"] >= 1
                unknown = ask({"op": "nope"})
                assert not unknown["ok"]
                bye = ask({"op": "bye"})
                assert bye["ok"]
            finally:
                sock.close()

    def test_json_mode_values_match_binary_mode(self):
        with serve_background(ServeConfig(master_seed=11)) as h:
            sock = socket.create_connection((h.host, h.port), timeout=10)
            f = sock.makefile("rwb")
            f.write(b'{"op": "hello", "session": "both"}\n')
            f.write(b'{"op": "fetch", "n": 32}\n')
            f.flush()
            json.loads(f.readline())
            via_json = json.loads(f.readline())["values"]
            sock.close()
        reference = SessionStream("both", master_seed=11).generate(32)
        assert via_json == [int(v) for v in reference]


class TestObservability:
    def test_serve_metrics_flow_through_obs_exporters(self, tmp_path):
        with obs.observed() as (registry, _tracer):
            with serve_background(ServeConfig(master_seed=1)) as h:
                with ServeClient(h.host, h.port, session="m") as c:
                    for _ in range(5):
                        c.fetch(100)
                    status = c.status()
            snapshot = registry.snapshot()
            prom = obs.prometheus_text(registry)
            trace = tmp_path / "serve.jsonl"
            obs.export_jsonl(trace, registry)
        assert snapshot["repro_serve_requests_total"] >= 5
        assert snapshot["repro_serve_numbers_total"] >= 500
        assert snapshot["repro_serve_sessions_active"] >= 1
        batches = snapshot["repro_serve_batch_size"]
        assert batches["count"] >= 1
        latency = snapshot["repro_serve_request_latency_seconds"]
        assert latency["count"] >= 5
        # STATUS carries the serve-side metrics once obs is enabled.
        assert "metrics" in status
        assert status["metrics"]["repro_serve_requests_total"] >= 5
        # Prometheus text exposition covers counters and histograms.
        assert "# TYPE repro_serve_requests_total counter" in prom
        assert "# TYPE repro_serve_request_latency_seconds histogram" in prom
        assert 'repro_serve_batch_size_bucket{le="+Inf"}' in prom
        # ... and the JSONL exporter carries the same serve metrics.
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        jsonl_names = {r.get("name") for r in records}
        assert "repro_serve_requests_total" in jsonl_names
        assert "repro_serve_request_latency_seconds" in jsonl_names

    def test_status_without_obs_still_reports_counters(self):
        with serve_background(ServeConfig(master_seed=1)) as h:
            with ServeClient(h.host, h.port, session="plain") as c:
                c.fetch(10)
                status = c.status()
        assert status["server"]["requests_total"] >= 1
        assert "metrics" not in status
