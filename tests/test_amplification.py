"""Tests for expander-walk probability amplification."""

import numpy as np
import pytest

from repro.bitsource import SplitMix64Source
from repro.core.amplification import (
    AmplificationResult,
    amplify,
    independent_bit_cost,
    walk_seeds,
)


class TestWalkSeeds:
    def test_count_and_dtype(self):
        seeds, bits = walk_seeds(10, source=SplitMix64Source(1))
        assert seeds.dtype == np.uint64 and seeds.size == 10
        assert bits > 0

    def test_bit_cost_beats_independent(self):
        """b + O(k) bits instead of 64k."""
        k = 50
        _, bits = walk_seeds(k, source=SplitMix64Source(2))
        # Expect ~64 + k * 3 * 8/7 ~ 235 bits << 3200.
        assert bits < independent_bit_cost(k) / 5

    def test_bit_cost_scales_linearly_in_k(self):
        _, b10 = walk_seeds(10, source=SplitMix64Source(3))
        _, b100 = walk_seeds(100, source=SplitMix64Source(3))
        per_seed = (b100 - b10) / 90
        assert 3.0 <= per_seed <= 4.5  # ~3 * 8/7 bits per adjacent step

    def test_seeds_mostly_distinct(self):
        """Neighbour 0 is the identity, so ~1/7 of adjacent positions
        repeat; everything else must be distinct."""
        seeds, _ = walk_seeds(100, source=SplitMix64Source(4))
        uniq = np.unique(seeds).size
        assert 75 <= uniq <= 100

    def test_spaced_seeds_distinct(self):
        seeds, _ = walk_seeds(100, source=SplitMix64Source(4), steps_between=8)
        assert np.unique(seeds).size == 100

    def test_steps_between_increases_cost(self):
        _, b1 = walk_seeds(20, source=SplitMix64Source(5), steps_between=1)
        _, b4 = walk_seeds(20, source=SplitMix64Source(5), steps_between=4)
        assert b4 > 2 * b1

    def test_deterministic(self):
        s1, _ = walk_seeds(5, source=SplitMix64Source(6))
        s2, _ = walk_seeds(5, source=SplitMix64Source(6))
        assert np.array_equal(s1, s2)

    def test_validation(self):
        with pytest.raises(ValueError):
            walk_seeds(0)
        with pytest.raises(ValueError):
            walk_seeds(5, steps_between=0)


class TestAmplify:
    def test_majority_amplifies_biased_predicate(self):
        """A predicate true for 75% of seeds majority-votes to True."""
        res = amplify(
            lambda s: (s & 0b11) != 0,  # true w.p. 3/4 on uniform seeds
            k=101,
            source=SplitMix64Source(7),
        )
        assert res.decision is True
        assert res.votes_true > 60

    def test_any_mode_finds_rare_witness(self):
        """One-sided: any single witness decides."""
        res = amplify(
            lambda s: (s & 0xFF) == 0,  # true w.p. 1/256
            k=2000,
            source=SplitMix64Source(8),
            mode="any",
        )
        assert res.decision is True  # ~8 expected witnesses

    def test_any_mode_no_witness(self):
        res = amplify(lambda s: False, k=50, source=SplitMix64Source(9),
                      mode="any")
        assert res.decision is False
        assert res.votes_true == 0

    def test_error_decays_with_k(self):
        """Walk amplification drives the majority-vote error down in k."""
        def noisy(s):  # true w.p. ~0.7
            return (int(s) % 10) < 7

        wrong_small = 0
        wrong_large = 0
        for trial in range(60):
            src = SplitMix64Source(1000 + trial)
            if not amplify(noisy, k=5, source=src).decision:
                wrong_small += 1
            src = SplitMix64Source(2000 + trial)
            if not amplify(noisy, k=41, source=src).decision:
                wrong_large += 1
        assert wrong_large <= wrong_small
        assert wrong_large <= 2

    def test_bit_savings_reported(self):
        res = amplify(lambda s: True, k=30, source=SplitMix64Source(10))
        assert isinstance(res, AmplificationResult)
        assert res.bit_savings > 0.7
        assert res.bits_independent == 30 * 64

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            amplify(lambda s: True, k=3, mode="bogus")
