"""Tests for SupervisedFeed: retries, backoff, failover, health machine."""

import numpy as np
import pytest

from repro import obs
from repro.bitsource.counter import SplitMix64Source
from repro.resilience import (
    FaultProfile,
    FaultyBitSource,
    FeedFailedError,
    FeedHealth,
    RetryPolicy,
    SupervisedFeed,
    default_failover_chain,
)

NOSLEEP = lambda s: None
FAST = RetryPolicy(max_retries=3, backoff_base_s=0.0)


def flaky(profile, seed=1, fault_seed=0):
    return FaultyBitSource(SplitMix64Source(seed), profile,
                           fault_seed=fault_seed, sleep=NOSLEEP)


class TestTransparency:
    def test_healthy_chain_is_byte_identical(self):
        direct = SplitMix64Source(3).words64(5000)
        feed = SupervisedFeed(SplitMix64Source(3), sleep=NOSLEEP)
        got = np.concatenate([feed.words64(7), feed.words64(4000),
                              feed.words64(993)])
        assert np.array_equal(direct, got)
        assert feed.health is FeedHealth.OK
        snap = feed.stats.snapshot()
        assert snap["retries"] == 0 and snap["failovers"] == 0
        assert snap["words_served"] == 5000

    def test_chunks3_and_uniform_derive(self):
        direct = SplitMix64Source(4).chunks3(500)
        feed = SupervisedFeed(SplitMix64Source(4), sleep=NOSLEEP)
        assert np.array_equal(direct, feed.chunks3(500))

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisedFeed([])
        with pytest.raises(TypeError):
            SupervisedFeed([object()])
        feed = SupervisedFeed(SplitMix64Source(1))
        with pytest.raises(ValueError):
            feed.words64(-1)


class TestRetries:
    def test_transient_errors_absorbed(self):
        feed = SupervisedFeed(
            flaky(FaultProfile(error_rate=0.3), fault_seed=3),
            policy=RetryPolicy(max_retries=6, backoff_base_s=0.0),
            sleep=NOSLEEP,
        )
        for _ in range(20):
            assert feed.words64(64).size == 64
        snap = feed.stats.snapshot()
        assert snap["retries"] > 0
        assert snap["failovers"] == 0
        assert feed.health is FeedHealth.DEGRADED

    def test_short_reads_assembled_to_full_request(self):
        feed = SupervisedFeed(
            flaky(FaultProfile(short_read_rate=1.0)),
            policy=FAST, sleep=NOSLEEP,
        )
        out = feed.words64(256)
        assert out.size == 256
        # Short reads still deliver the true stream, just in pieces.
        assert np.array_equal(out, SplitMix64Source(1).words64(256))
        assert feed.stats.snapshot()["short_reads"] > 0
        assert feed.health is FeedHealth.DEGRADED

    def test_backoff_schedule_deterministic(self):
        def schedule():
            slept = []
            feed = SupervisedFeed(
                [flaky(FaultProfile(error_rate=1.0)), SplitMix64Source(9)],
                policy=RetryPolicy(max_retries=3, backoff_base_s=0.01),
                jitter_seed=5, sleep=slept.append,
            )
            feed.words64(64)
            return slept

        first = schedule()
        assert len(first) == 3  # one per retry before failover
        # Exponential shape: each wait roughly doubles (jitter is ±25%).
        assert first[0] < first[1] < first[2]
        assert schedule() == first


class TestFailover:
    def test_dead_primary_fails_over(self):
        fallback = SplitMix64Source(9)
        expected_tail = SplitMix64Source(9).words64(64)
        feed = SupervisedFeed(
            [flaky(FaultProfile(fail_after=0)), fallback],
            policy=FAST, sleep=NOSLEEP,
        )
        out = feed.words64(64)
        assert np.array_equal(out, expected_tail)
        snap = feed.stats.snapshot()
        assert snap["failovers"] == 1
        assert feed.active_source is fallback
        assert feed.health is FeedHealth.DEGRADED

    def test_failover_event_records_switch_point(self):
        feed = SupervisedFeed(
            [flaky(FaultProfile(fail_after=1)), SplitMix64Source(9)],
            policy=FAST, sleep=NOSLEEP,
        )
        feed.words64(100)  # served by the primary
        feed.words64(50)   # primary dies; fallback takes over
        events = feed.stats.snapshot()["failover_events"]
        assert len(events) == 1
        assert events[0]["from"].startswith("faulty(")
        assert events[0]["to"] == "splitmix64"
        assert events[0]["at_word"] == 100
        assert "InjectedFault" in events[0]["error"]

    def test_mid_request_failover_keeps_partial_words(self):
        # Primary delivers short reads then dies: the assembled request
        # must splice primary prefix + fallback remainder, no gaps.
        class DiesAfterShortRead(SplitMix64Source):
            def __init__(self, seed):
                super().__init__(seed)
                self.calls = 0

            def words64(self, n):
                self.calls += 1
                if self.calls == 1:
                    return super().words64(min(n, 10))
                raise RuntimeError("gone")

        feed = SupervisedFeed(
            [DiesAfterShortRead(1), SplitMix64Source(9)],
            policy=RetryPolicy(max_retries=0, backoff_base_s=0.0),
            sleep=NOSLEEP,
        )
        out = feed.words64(64)
        assert out.size == 64
        assert np.array_equal(out[:10], SplitMix64Source(1).words64(10))
        assert np.array_equal(out[10:], SplitMix64Source(9).words64(54))
        assert feed.stats.snapshot()["failover_events"][0]["at_word"] == 10

    def test_exhausted_chain_raises_feed_failed(self):
        feed = SupervisedFeed(
            [flaky(FaultProfile(error_rate=1.0)),
             flaky(FaultProfile(error_rate=1.0), seed=2, fault_seed=1)],
            policy=FAST, sleep=NOSLEEP,
        )
        with pytest.raises(FeedFailedError, match="exhausted"):
            feed.words64(64)
        assert feed.health is FeedHealth.FAILED
        # Once FAILED, every request fails fast.
        with pytest.raises(FeedFailedError, match="FAILED"):
            feed.words64(1)

    def test_empty_reads_do_not_spin_forever(self):
        class Hollow(SplitMix64Source):
            def words64(self, n):
                return np.empty(0, dtype=np.uint64)

        feed = SupervisedFeed([Hollow(1)], policy=FAST, sleep=NOSLEEP)
        with pytest.raises(FeedFailedError):
            feed.words64(8)


class TestHealthAndMetrics:
    def test_health_gauge_and_counters_exported(self):
        with obs.observed() as (registry, tracer):
            feed = SupervisedFeed(
                [flaky(FaultProfile(fail_after=0)), SplitMix64Source(9)],
                policy=RetryPolicy(max_retries=2, backoff_base_s=0.001),
                sleep=NOSLEEP,
            )
            feed.words64(64)
        assert registry.counter("repro_feed_retries_total").value == 2
        assert registry.counter("repro_feed_failovers_total").value == 1
        assert registry.gauge("repro_feed_health").value == \
            float(FeedHealth.DEGRADED)
        names = {rec.name for rec in tracer.spans}
        assert "feed-retry" in names
        assert "feed-failover" in names

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)


class TestReseed:
    def test_reseed_resets_chain_and_health(self):
        primary = flaky(FaultProfile(fail_after=0))
        fallback = SplitMix64Source(9)
        feed = SupervisedFeed([primary, fallback], policy=FAST,
                              sleep=NOSLEEP)
        feed.words64(64)
        assert feed.active_source is fallback
        feed.reseed(5)
        # The faulty wrapper restarts its schedule too (fail_after=0
        # means it dies again immediately) -- but the chain reset means
        # the primary is tried first, then degrades again.
        assert feed.health is FeedHealth.OK
        assert feed.active_source is primary
        out = feed.words64(16)
        assert out.size == 16

    def test_reseed_derives_distinct_fallback_seeds(self):
        a = SplitMix64Source(1)
        b = SplitMix64Source(2)
        feed = SupervisedFeed([a, b], sleep=NOSLEEP)
        feed.reseed(5)
        assert not np.array_equal(a.words64(16), b.words64(16))


class TestDefaultChain:
    def test_default_chain_shape(self):
        chain = default_failover_chain(seed=1)
        assert [s.name for s in chain] == \
            ["glibc-rand", "splitmix64", "os-entropy"]

    def test_default_chain_primary_matches_paper_feed(self):
        from repro.bitsource.glibc import GlibcRandom

        chain = default_failover_chain(seed=7)
        assert np.array_equal(chain[0].words64(32),
                              GlibcRandom(7).words64(32))
