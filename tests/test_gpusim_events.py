"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.gpusim.events import Environment, SimulationError


class TestTimeouts:
    def test_clock_advances(self):
        env = Environment()

        def proc():
            yield env.timeout(5)
            yield env.timeout(2.5)

        env.process(proc())
        assert env.run() == 7.5

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay_allowed(self):
        env = Environment()

        def proc():
            yield env.timeout(0)

        env.process(proc())
        assert env.run() == 0.0

    def test_run_until_stops_early(self):
        env = Environment()

        def proc():
            yield env.timeout(100)

        env.process(proc())
        assert env.run(until=10) == 10
        assert env.run() == 100


class TestOrdering:
    def test_simultaneous_events_fifo(self):
        env = Environment()
        order = []

        def proc(name):
            yield env.timeout(1)
            order.append(name)

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert order == ["a", "b"]

    def test_interleaving(self):
        env = Environment()
        trace = []

        def fast():
            for i in range(3):
                yield env.timeout(1)
                trace.append(("fast", env.now))

        def slow():
            for i in range(2):
                yield env.timeout(1.5)
                trace.append(("slow", env.now))

        env.run_all([fast(), slow()])
        assert trace == [
            ("fast", 1),
            ("slow", 1.5),
            ("fast", 2),
            ("slow", 3.0),
            ("fast", 3),
        ] or trace == [
            ("fast", 1),
            ("slow", 1.5),
            ("fast", 2),
            ("fast", 3),
            ("slow", 3.0),
        ]


class TestProcesses:
    def test_waiting_on_process_completion(self):
        env = Environment()
        log = []

        def child():
            yield env.timeout(4)
            log.append("child done")
            return 42

        def parent():
            result = yield env.process(child())
            log.append(("parent saw", result, env.now))

        env.process(parent())
        env.run()
        assert log == ["child done", ("parent saw", 42, 4)]

    def test_yielding_garbage_raises(self):
        env = Environment()

        def proc():
            yield "not an event"

        env.process(proc())
        with pytest.raises(SimulationError, match="yielded"):
            env.run()


class TestStore:
    def test_put_get_fifo(self):
        env = Environment()
        store = env.store()
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)
                yield env.timeout(1)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append((item, env.now))

        env.run_all([producer(), consumer()])
        assert [g[0] for g in got] == [0, 1, 2]

    def test_bounded_capacity_blocks_producer(self):
        env = Environment()
        store = env.store(capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield store.put(i)
                times.append(env.now)

        def consumer():
            for _ in range(3):
                yield env.timeout(10)
                yield store.get()

        env.run_all([producer(), consumer()])
        # First put immediate; each later put waits for a get at t=10k.
        assert times == [0, 10, 20]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = env.store()
        when = []

        def consumer():
            yield store.get()
            when.append(env.now)

        def producer():
            yield env.timeout(7)
            yield store.put("x")

        env.run_all([consumer(), producer()])
        assert when == [7]

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.store(capacity=0)

    def test_level(self):
        env = Environment()
        store = env.store()

        def producer():
            yield store.put(1)
            yield store.put(2)

        env.process(producer())
        env.run()
        assert store.level == 2
