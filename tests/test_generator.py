"""Tests for the single-stream on-demand generator (Algorithms 1-2)."""

import numpy as np
import pytest

from repro.bitsource.counter import SplitMix64Source
from repro.core.expander import GabberGalilExpander
from repro.core.generator import DEFAULT_WALK_LENGTH, ExpanderWalkPRNG


class TestInitialization:
    def test_default_parameters(self):
        p = ExpanderWalkPRNG(seed=1)
        assert p.walk_length == DEFAULT_WALK_LENGTH == 64
        assert p.graph.m == 2**32
        assert p.source.name == "glibc-rand"

    def test_initialize_consumes_feed(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(3))
        # Algorithm 1: a 64-step mixing walk happens up front.
        assert p.bits_consumed >= 3 * 64

    def test_rejects_bad_walk_length(self):
        with pytest.raises(ValueError):
            ExpanderWalkPRNG(walk_length=0)

    def test_custom_graph(self):
        g = GabberGalilExpander(m=97)
        p = ExpanderWalkPRNG(graph=g, bit_source=SplitMix64Source(1))
        v = p.get_next_rand()
        assert 0 <= v < 97 * 97


class TestOnDemand:
    def test_values_are_64bit(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(5))
        vals = [p.get_next_rand() for _ in range(20)]
        assert all(0 <= v < 2**64 for v in vals)

    def test_deterministic(self):
        a = ExpanderWalkPRNG(bit_source=SplitMix64Source(9))
        b = ExpanderWalkPRNG(bit_source=SplitMix64Source(9))
        assert [a.get_next_rand() for _ in range(10)] == [
            b.get_next_rand() for _ in range(10)
        ]

    def test_seeds_differ(self):
        a = ExpanderWalkPRNG(bit_source=SplitMix64Source(1))
        b = ExpanderWalkPRNG(bit_source=SplitMix64Source(2))
        assert a.get_next_rand() != b.get_next_rand()

    def test_next_batch_matches_scalar(self):
        a = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        b = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        batch = a.next_batch(8)
        scalars = [b.get_next_rand() for _ in range(8)]
        assert list(batch) == scalars

    def test_counts_numbers(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        p.get_next_rand()
        p.next_batch(5)
        assert p.numbers_generated == 6

    def test_reinitialize_resets(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        p.get_next_rand()
        p.initialize()
        assert p.numbers_generated == 0

    def test_negative_batch_rejected(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        with pytest.raises(ValueError):
            p.next_batch(-1)

    def test_position_tracks_walk(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        pos0 = p.position
        p.get_next_rand()
        assert p.position != pos0


class TestDistributions:
    def test_random_scalar(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        v = p.random()
        assert isinstance(v, float) and 0 <= v < 1

    def test_random_vector(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        u = p.random(50)
        assert u.shape == (50,)
        assert (u >= 0).all() and (u < 1).all()

    def test_randint_range(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        vals = [p.randint(10, 20) for _ in range(50)]
        assert all(10 <= v < 20 for v in vals)
        assert len(set(vals)) > 3

    def test_randint_empty_range(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(4))
        with pytest.raises(ValueError):
            p.randint(5, 5)

    def test_rough_uniformity(self):
        p = ExpanderWalkPRNG(bit_source=SplitMix64Source(11))
        u = p.random(400)
        assert abs(u.mean() - 0.5) < 0.06
