"""The serve-response cache: LRU mechanics and stream-exactness.

The cache keys engine span fetches by their full stream coordinates
``(engine, seed, lanes, offset, count)``, so a hit is byte-identical to
the fetch it replaces *by construction* -- these tests pin that down
empirically (cached vs uncached served bytes), plus the mechanics that
make it safe: copy-on-put/copy-on-get (the wire path byteswaps served
buffers in place), byte-bounded LRU eviction, and the hit/miss
counters the dashboards read.
"""

import numpy as np
import pytest

from repro import obs
from repro.engine import EngineConfig, ShardedEngine
from repro.serve.batching import BatchingExecutor, BatchRequest, ResponseCache
from repro.serve.session import SessionStream

SEED = 4242


def _words(n, fill):
    return np.full(n, fill, dtype=np.uint64)


class TestResponseCacheUnit:
    def test_get_miss_then_hit(self):
        cache = ResponseCache(1 << 16)
        key = (1, 2, 3, 0, 8)
        assert cache.get(key) is None
        cache.put(key, _words(8, 7))
        got = cache.get(key)
        np.testing.assert_array_equal(got, _words(8, 7))

    def test_copy_on_put_and_get(self):
        """Neither the stored buffer nor a returned one may share
        memory: the framing path byteswaps served arrays in place."""
        cache = ResponseCache(1 << 16)
        key = ("k",)
        src = _words(4, 1)
        cache.put(key, src)
        src[:] = 99  # caller mutates after put
        first = cache.get(key)
        np.testing.assert_array_equal(first, _words(4, 1))
        first[:] = 55  # consumer mutates a hit (byteswap)
        second = cache.get(key)
        np.testing.assert_array_equal(second, _words(4, 1))

    def test_lru_eviction_by_bytes(self):
        cache = ResponseCache(3 * 8 * 8)  # room for three 8-word entries
        for i in range(3):
            cache.put(("k", i), _words(8, i))
        assert cache.stats["entries"] == 3
        cache.get(("k", 0))  # refresh 0: now 1 is least-recent
        cache.put(("k", 3), _words(8, 3))
        assert cache.get(("k", 1)) is None, "LRU entry should be evicted"
        assert cache.get(("k", 0)) is not None
        assert cache.get(("k", 3)) is not None

    def test_oversized_entry_not_cached(self):
        cache = ResponseCache(8 * 4)
        cache.put(("big",), _words(100, 1))
        assert cache.stats == {"entries": 0, "bytes": 0}
        assert cache.get(("big",)) is None

    def test_replacing_a_key_adjusts_bytes(self):
        cache = ResponseCache(1 << 16)
        cache.put(("k",), _words(8, 1))
        cache.put(("k",), _words(4, 2))
        assert cache.stats == {"entries": 1, "bytes": 4 * 8}

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            ResponseCache(0)


@pytest.fixture(scope="module")
def engine():
    with ShardedEngine(EngineConfig(
        seed=SEED, shards=1, lanes=8, ring_slots=0,
    )) as eng:
        yield eng


def _prefill_once(executor, engine, session_id, count):
    """Run the planner exactly as a worker batch would for one session."""
    s = SessionStream(
        session_id, master_seed=SEED, lanes=8, engine=engine,
        readahead_max=1 << 14,
    )
    batch = [BatchRequest(session=s, count=count)]
    with s.lock:
        executor._prefill(batch, [s])
        values = s.generate_locked(count)
    return values


class TestPrefillCaching:
    def test_hit_skips_engine_and_is_byte_identical(self, engine):
        """A replayed session must come out of the cache byte-equal to
        the engine fetch it replaces, with exactly one engine call
        between the two runs and hit/miss counters telling the story."""
        with obs.observed() as (registry, _tracer):
            ex = BatchingExecutor(cache_bytes=1 << 20)
            calls = []
            real = engine.fetch_spans

            def counting(spans):
                calls.append(list(spans))
                return real(spans)

            engine.fetch_spans = counting
            try:
                first = _prefill_once(ex, engine, "replay", 200)
                second = _prefill_once(ex, engine, "replay", 200)
            finally:
                engine.fetch_spans = real
            np.testing.assert_array_equal(first, second)
            assert len(calls) == 1, "second run should be a pure hit"
            assert registry.counter(
                "repro_serve_cache_hits_total"
            ).value == 1
            assert registry.counter(
                "repro_serve_cache_misses_total"
            ).value == 1
        # And the bytes are the true stream: compare against the
        # in-process reference for the same session coordinates.
        ref = SessionStream("replay", master_seed=SEED, lanes=8)
        np.testing.assert_array_equal(first, ref.generate(200))

    def test_cached_vs_uncached_bytes_identical(self, engine):
        """The acceptance check: the same session history served with
        the cache on and off must produce identical bytes."""
        on = _prefill_once(
            BatchingExecutor(cache_bytes=1 << 20), engine, "onoff", 300
        )
        off = _prefill_once(
            BatchingExecutor(cache_bytes=0), engine, "onoff", 300
        )
        np.testing.assert_array_equal(on, off)

    def test_cache_disabled_by_default(self):
        assert BatchingExecutor()._cache is None
        assert BatchingExecutor(cache_bytes=4096)._cache is not None
