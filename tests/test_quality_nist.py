"""Tests for the NIST SP800-22 battery.

The basic tests are validated against the worked examples of the
publication itself (the 100-bit pi expansion); the rest are checked for
discrimination between strong and weak generators.
"""

import numpy as np
import pytest

from repro.baselines.lcg import AnsiLcgPRNG
from repro.baselines.mt19937 import MT19937
from repro.quality.nist import (
    NIST_TEST_NAMES,
    approximate_entropy_test,
    block_frequency_test,
    cumulative_sums_test,
    dft_spectral_test,
    frequency_test,
    linear_complexity_test,
    longest_run_test_nist,
    matrix_rank_test_nist,
    maurer_universal_test,
    non_overlapping_template_test,
    overlapping_template_test,
    random_excursions_test,
    random_excursions_variant_test,
    run_nist,
    runs_test_nist,
    serial_test_nist,
)
from repro.quality.nist.advanced import _berlekamp_massey_batch
from repro.quality.nist.helpers import sidak_min

#: The SP800-22 example bit string (first 100 binary digits of pi).
PI_100 = np.array(
    [int(c) for c in
     "1100100100001111110110101010001000100001011010001100001000110100"
     "110001001100011001100010100010111000"],
    dtype=np.uint8,
)


def good_bits(n=500_000, seed=20240707):
    return MT19937(seed).bits_stream(n)


def bad_bits(n=500_000):
    return AnsiLcgPRNG(1).bits_stream(n)


class TestWorkedExamples:
    """Known answers straight from NIST SP800-22 rev 1a."""

    def test_frequency_pi(self):
        assert frequency_test(PI_100).p_value == pytest.approx(0.109599, abs=1e-5)

    def test_block_frequency_pi(self):
        res = block_frequency_test(PI_100, block=10)
        assert res.p_value == pytest.approx(0.706438, abs=1e-5)

    def test_runs_pi(self):
        assert runs_test_nist(PI_100).p_value == pytest.approx(0.500798, abs=1e-5)

    def test_cusum_forward_pi(self):
        res = cumulative_sums_test(PI_100)
        assert "forward p=0.219" in res.detail


class TestDiscrimination:
    def test_frequency(self):
        assert frequency_test(good_bits()).passed
        assert not frequency_test(bad_bits()).passed  # stuck bits skew density

    def test_block_frequency(self):
        assert block_frequency_test(good_bits()).passed
        assert not block_frequency_test(bad_bits()).passed

    def test_runs(self):
        assert runs_test_nist(good_bits()).passed

    def test_longest_run(self):
        assert longest_run_test_nist(good_bits()).passed
        assert not longest_run_test_nist(bad_bits()).passed

    def test_matrix_rank(self):
        assert matrix_rank_test_nist(good_bits()).passed
        assert not matrix_rank_test_nist(bad_bits()).passed

    def test_dft(self):
        assert dft_spectral_test(good_bits()).passed
        assert not dft_spectral_test(bad_bits()).passed

    def test_templates(self):
        assert non_overlapping_template_test(good_bits()).passed
        assert overlapping_template_test(good_bits()).passed
        assert not overlapping_template_test(bad_bits()).passed

    def test_universal(self):
        assert maurer_universal_test(good_bits(1_000_000)).passed
        assert not maurer_universal_test(bad_bits(1_000_000)).passed

    def test_linear_complexity(self):
        assert linear_complexity_test(good_bits(100_000), M=500).passed

    def test_linear_complexity_detects_lfsr_like(self):
        """An all-zeros stream has linear complexity 0 everywhere."""
        zeros = np.zeros(50_000, dtype=np.uint8)
        assert not linear_complexity_test(zeros, M=500).passed

    def test_serial(self):
        assert serial_test_nist(good_bits()).passed
        assert not serial_test_nist(bad_bits()).passed

    def test_approximate_entropy(self):
        assert approximate_entropy_test(good_bits()).passed
        assert not approximate_entropy_test(bad_bits()).passed

    def test_cusum(self):
        assert cumulative_sums_test(good_bits()).passed
        assert not cumulative_sums_test(bad_bits()).passed

    def test_excursions(self):
        assert random_excursions_test(good_bits()).passed
        assert random_excursions_variant_test(good_bits()).passed


class TestBerlekampMassey:
    def test_known_complexities(self):
        # 1101011110001 has linear complexity 4 (SP800-22 example).
        seq = np.array([[1, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0, 1]], dtype=np.uint8)
        assert _berlekamp_massey_batch(seq)[0] == 4

    def test_degenerate_rows(self):
        blocks = np.zeros((2, 16), dtype=np.uint8)
        blocks[1, 0] = 1  # 1000... has complexity 1
        L = _berlekamp_massey_batch(blocks)
        assert L[0] == 0 and L[1] == 1

    def test_batch_equals_scalar(self):
        rng = np.random.Generator(np.random.PCG64(5))
        blocks = rng.integers(0, 2, size=(20, 64)).astype(np.uint8)
        batched = _berlekamp_massey_batch(blocks)
        single = np.array(
            [_berlekamp_massey_batch(blocks[i : i + 1])[0] for i in range(20)]
        )
        assert np.array_equal(batched, single)

    def test_random_sequences_near_half_length(self):
        rng = np.random.Generator(np.random.PCG64(6))
        blocks = rng.integers(0, 2, size=(100, 128)).astype(np.uint8)
        L = _berlekamp_massey_batch(blocks)
        assert abs(L.mean() - 64) < 2


class TestSidakMin:
    def test_uniform_under_independence(self):
        rng = np.random.Generator(np.random.PCG64(7))
        ps = [sidak_min(rng.random(5)) for _ in range(2000)]
        low = np.mean([p < 0.01 for p in ps])
        assert 0.002 < low < 0.025  # ~1% by construction

    def test_capped_below_upper_band(self):
        assert sidak_min([0.99, 0.999]) <= 0.985

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sidak_min([])


class TestFullBattery:
    def test_fifteen_tests(self):
        assert len(NIST_TEST_NAMES) == 15
        res = run_nist(MT19937(3), n_bits=200_000)
        assert res.num_tests == 15
        assert [r.name for r in res.results] == NIST_TEST_NAMES

    def test_good_generator_passes_most(self):
        res = run_nist(MT19937(2024), n_bits=400_000)
        assert res.num_passed >= 13

    def test_weak_generator_fails_most(self):
        res = run_nist(AnsiLcgPRNG(1), n_bits=400_000)
        assert res.num_passed <= 6

    def test_minimum_bits_enforced(self):
        with pytest.raises(ValueError, match="bits"):
            run_nist(MT19937(1), n_bits=1000)

    def test_progress_callback(self):
        seen = []
        run_nist(MT19937(1), n_bits=200_000, progress=seen.append)
        assert len(seen) == 15
