"""Crash-safe serving: journal durability, recovery, RESUME, exactly-once.

The property under drill everywhere here: however the previous server
process died -- clean drain, torn journal tail, ``kill -9`` mid-stream
-- a restarted server plus resuming clients reproduce each session's
stream *byte-identically* with exactly-once word delivery.
"""

import os

import numpy as np
import pytest

from repro.serve import (
    ConnectError,
    ServeClient,
    ServeConfig,
    SessionStream,
    read_journal,
    serve_background,
)
from repro.serve.journal import SessionJournal, _encode
from repro.serve.protocol import ProtocolError, pack_resume, unpack_resume


def golden(session_id, master_seed, lanes, n):
    """Uninterrupted in-process reference for a served stream."""
    return SessionStream(
        session_id, master_seed=master_seed, lanes=lanes
    ).generate(n)


# ----------------------------------------------------------------------
# Journal file format
# ----------------------------------------------------------------------


class TestJournalFile:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.log")
        j = SessionJournal.open(path)
        j.log_session("a", 16)
        j.log_ack("a", 100)
        j.log_session("b", 8)
        j.log_ack("a", 250)
        j.log_ack("b", 40)
        j.close()
        state = read_journal(path)
        assert state.sessions == {
            "a": {"lanes": 16, "offset": 250},
            "b": {"lanes": 8, "offset": 40},
        }
        assert not state.clean_shutdown
        assert state.truncated_bytes == 0

    def test_shutdown_marker(self, tmp_path):
        path = str(tmp_path / "j.log")
        j = SessionJournal.open(path)
        j.log_session("a", 16)
        j.log_shutdown()
        j.close()
        assert read_journal(path).clean_shutdown

    @pytest.mark.parametrize("torn_tail", [
        b"\x01",                          # lone partial length byte
        b"\x00\x00\x00\x10\xaa\xbb",      # header + truncated payload
        b"\x00\x00\x00\x05\x00\x00\x00\x00not-json-crc",  # bad CRC
        b"\xff\xff\xff\xff garbage length",
    ])
    def test_torn_tail_tolerated(self, tmp_path, torn_tail):
        path = str(tmp_path / "j.log")
        j = SessionJournal.open(path)
        j.log_session("a", 16)
        j.log_ack("a", 77)
        j.close()
        with open(path, "ab") as fh:
            fh.write(torn_tail)
        state = read_journal(path)
        assert state.sessions == {"a": {"lanes": 16, "offset": 77}}
        assert state.truncated_bytes == len(torn_tail)
        # Re-opening truncates the torn tail and compacts.
        SessionJournal.open(path).close()
        assert read_journal(path).truncated_bytes == 0
        assert read_journal(path).sessions["a"]["offset"] == 77

    def test_mid_record_truncation(self, tmp_path):
        """A crash mid-``write`` leaves a prefix of the final record."""
        path = str(tmp_path / "j.log")
        j = SessionJournal.open(path)
        j.log_session("a", 16)
        j.log_ack("a", 10)
        j.log_ack("a", 99)
        j.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)
        state = read_journal(path)
        # The torn final ack is dropped; the previous ack survives.
        assert state.sessions["a"]["offset"] == 10
        assert state.truncated_bytes > 0

    def test_compaction_shrinks_the_log(self, tmp_path):
        path = str(tmp_path / "j.log")
        j = SessionJournal.open(path)
        j.log_session("a", 16)
        for offset in range(10, 5010, 10):
            j.log_ack("a", offset)
        j.close()
        big = os.path.getsize(path)
        SessionJournal.open(path).close()
        small = os.path.getsize(path)
        assert small < big / 50
        assert read_journal(path).sessions["a"]["offset"] == 5000

    def test_unknown_record_types_skipped(self, tmp_path):
        path = str(tmp_path / "j.log")
        j = SessionJournal.open(path)
        j.log_session("a", 16)
        j._append({"type": "future-extension", "x": 1})
        j.log_ack("a", 5)
        j.close()
        state = read_journal(path)
        assert state.sessions["a"]["offset"] == 5
        assert state.records == 3

    def test_missing_file_is_empty_state(self, tmp_path):
        state = read_journal(str(tmp_path / "absent.log"))
        assert state.sessions == {} and state.records == 0

    def test_closed_journal_rejects_appends(self, tmp_path):
        j = SessionJournal.open(str(tmp_path / "j.log"))
        j.close()
        with pytest.raises(ValueError, match="closed"):
            j.log_ack("a", 1)

    def test_torn_journal_fault_helper(self, tmp_path, chaos):
        """The chaos fixture's torn_journal fault is recoverable."""
        path = str(tmp_path / "j.log")
        j = SessionJournal.open(path)
        j.log_session("a", 16)
        j.log_ack("a", 123)
        # One fully fsync'd record the tear must not reach.
        safe_size = os.path.getsize(path)
        j.log_ack("a", 456)
        j.close()
        dropped = chaos.tear_journal(path, drop_bytes=2, garbage_bytes=5)
        assert dropped == 2
        state = read_journal(path)
        # The torn record is gone, everything before it survives.
        assert state.sessions["a"]["offset"] == 123
        assert os.path.getsize(path) >= safe_size


class TestResumeProtocol:
    def test_pack_unpack_roundtrip(self):
        sid, offset = "client-7", (1 << 40) + 99
        frame = pack_resume(sid, offset)
        # strip length prefix + opcode
        assert unpack_resume(frame[5:]) == (sid, offset)

    def test_bad_payloads_rejected(self):
        with pytest.raises(ProtocolError):
            pack_resume("", 0)
        with pytest.raises(ProtocolError):
            pack_resume("x", -1)
        with pytest.raises(ProtocolError):
            unpack_resume(b"\x00" * 8)  # offset but no id


# ----------------------------------------------------------------------
# Server recovery + exactly-once resume
# ----------------------------------------------------------------------


def _config(tmp_path, **kw):
    kw.setdefault("master_seed", 7)
    kw.setdefault("lanes", 16)
    kw.setdefault("journal_path", str(tmp_path / "serve.journal"))
    return ServeConfig(**kw)


class TestServerRecovery:
    def test_restart_continues_sessions_byte_identically(self, tmp_path):
        cfg = _config(tmp_path)
        ref = golden("alice", 7, 16, 300)
        with serve_background(cfg) as h:
            with ServeClient(h.host, h.port, session="alice") as c:
                head = c.fetch(180)
        # Simulated crash *after* the acked fetch: new server, same
        # journal.  A plain HELLO continues from the journaled offset.
        with serve_background(_config(tmp_path)) as h2:
            assert h2.server.recovered_sessions == 1
            with ServeClient(h2.host, h2.port, session="alice") as c2:
                tail = c2.fetch(120)
        np.testing.assert_array_equal(np.concatenate([head, tail]), ref)

    def test_restart_after_torn_journal(self, tmp_path, chaos):
        cfg = _config(tmp_path)
        ref = golden("bob", 7, 16, 200)
        with serve_background(cfg) as h:
            with ServeClient(h.host, h.port, session="bob") as c:
                head = c.fetch(100)
        chaos.tear_journal(cfg.journal_path, drop_bytes=4, garbage_bytes=7)
        # The torn record was the clean-shutdown marker (last append):
        # dropping it only loses the marker, never acked offsets.
        with serve_background(_config(tmp_path)) as h2:
            with ServeClient(h2.host, h2.port, session="bob") as c2:
                tail = c2.fetch(100)
        np.testing.assert_array_equal(np.concatenate([head, tail]), ref)

    def test_client_resume_is_exactly_once(self, tmp_path):
        """The client's own offset wins over the journal: words fetched
        but never delivered are re-served, never skipped."""
        cfg = _config(tmp_path)
        ref = golden("carol", 7, 16, 300)
        with serve_background(cfg) as h:
            c = ServeClient(h.host, h.port, session="carol")
            head = c.fetch(100)
            # The server generated and acked 60 more words, but pretend
            # the delivery never arrived: words_received stays 100.
            c2 = ServeClient(h.host, h.port, session="carol")
            c2.fetch(60)
            c2._sock.close()
            c._sock.close()
        with serve_background(_config(tmp_path)) as h2:
            # Journal says 160; the client knows better and resumes 100.
            c = ServeClient(h2.host, h2.port, session="carol")
            c.resume(100)
            tail = c.fetch(200)
            c.close()
        np.testing.assert_array_equal(np.concatenate([head, tail]), ref)

    def test_resume_rearms_sentinel(self, tmp_path):
        cfg = _config(tmp_path)
        with serve_background(cfg) as h:
            with ServeClient(h.host, h.port, session="dora") as c:
                c.fetch(50)
                old = h.server.sessions["dora"].stream.sentinel
                c.resume(10)
                new = h.server.sessions["dora"].stream.sentinel
                assert new is not old
                c.fetch(10)

    def test_memoryless_restart_still_resumable(self, tmp_path):
        """No journal at all: streams are pure functions of their seeds,
        so a client RESUME alone reproduces the stream byte-exactly."""
        ref = golden("eve", 7, 16, 200)
        with serve_background(ServeConfig(master_seed=7, lanes=16)) as h:
            with ServeClient(h.host, h.port, session="eve") as c:
                head = c.fetch(120)
        with serve_background(ServeConfig(master_seed=7, lanes=16)) as h2:
            c = ServeClient(h2.host, h2.port, session="eve")
            c.resume(120)
            tail = c.fetch(80)
            c.close()
        np.testing.assert_array_equal(np.concatenate([head, tail]), ref)

    def test_json_mode_resume(self, tmp_path):
        import json
        import socket

        cfg = _config(tmp_path)
        ref = golden("fred", 7, 16, 40)
        with serve_background(cfg) as h:
            with socket.create_connection((h.host, h.port), timeout=10) as s:
                fh = s.makefile("rwb")
                fh.write(json.dumps(
                    {"op": "resume", "session": "fred", "offset": 8}
                ).encode() + b"\n")
                fh.flush()
                ack = json.loads(fh.readline())
                assert ack["ok"] and ack["offset"] == 8
                fh.write(b'{"op": "fetch", "n": 16}\n')
                fh.flush()
                got = json.loads(fh.readline())["values"]
        np.testing.assert_array_equal(
            np.array(got, dtype=np.uint64), ref[8:24]
        )

    def test_journal_in_status(self, tmp_path):
        cfg = _config(tmp_path)
        with serve_background(cfg) as h:
            with ServeClient(h.host, h.port, session="gus") as c:
                c.fetch(10)
                doc = c.status()["server"]["journal"]
        assert doc["path"] == cfg.journal_path
        assert doc["recovered_sessions"] == 0
        assert doc["appends"] >= 2  # session record + >= 1 ack

    def test_clean_stop_writes_shutdown_marker(self, tmp_path):
        cfg = _config(tmp_path)
        with serve_background(cfg) as h:
            with ServeClient(h.host, h.port, session="hal") as c:
                c.fetch(10)
        state = read_journal(cfg.journal_path)
        assert state.clean_shutdown
        assert state.sessions["hal"]["offset"] == 10


class TestClientErrors:
    def test_connect_refused_raises_connect_error(self):
        with pytest.raises(ConnectError, match="cannot connect"):
            # Port 1 is privileged and never our server.
            ServeClient("127.0.0.1", 1, timeout=2)

    def test_busy_backoff_is_deterministic_and_capped(self):
        from repro.serve.client import _backoff_delay

        delays = [_backoff_delay(0.05, 2.0, k) for k in range(12)]
        assert delays == [
            min(2.0, 0.05 * 2 ** k) for k in range(12)
        ]
        assert delays[-1] == 2.0  # capped, not 102 seconds
        assert delays == [_backoff_delay(0.05, 2.0, k) for k in range(12)]

    def test_fetch_cli_connection_refused_one_line(self, capsys):
        from repro.cli import main

        rc = main(["fetch", "--host", "127.0.0.1", "--port", "1", "-n", "4"])
        assert rc != 0
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # exactly one line
        assert "repro fetch:" in err and "cannot connect" in err
        assert "Traceback" not in err
