"""Tests for substream spawning."""

import numpy as np
import pytest

from repro.core.streams import derive_seed, spawn_parallel_streams, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_distinct_across_indices(self):
        seeds = {derive_seed(42, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_distinct_across_masters(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(1, -1)


class TestSpawn:
    def test_streams_reproducible(self):
        a = spawn_streams(7, 3)
        b = spawn_streams(7, 3)
        for ga, gb in zip(a, b):
            assert ga.get_next_rand() == gb.get_next_rand()

    def test_streams_independent(self):
        streams = spawn_streams(7, 4)
        outs = [[g.get_next_rand() for _ in range(5)] for g in streams]
        assert len({tuple(o) for o in outs}) == 4

    def test_parallel_streams(self):
        banks = spawn_parallel_streams(9, 2, num_threads=128)
        v0 = banks[0].generate(500)
        v1 = banks[1].generate(500)
        assert not np.array_equal(v0, v1)
        # No collisions across substreams in a small sample.
        assert np.unique(np.concatenate([v0, v1])).size == 1000

    def test_count_validation(self):
        with pytest.raises(ValueError):
            spawn_streams(1, 0)

    def test_cross_correlation_low(self):
        a, b = spawn_parallel_streams(11, 2, num_threads=256)
        x = a.random(20_000)
        y = b.random(20_000)
        r = np.corrcoef(x, y)[0, 1]
        assert abs(r) < 0.02
