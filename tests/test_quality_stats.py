"""Tests for the shared statistics plumbing."""

import numpy as np
import pytest

from repro.quality.stats import (
    PASS_HI,
    PASS_LO,
    BatteryResult,
    TestResult,
    binary_matrix_rank_probs,
    chi2_pvalue,
    fisher_combine,
    ks_uniform,
    normal_pvalue,
    normal_uniform_pvalue,
)


class TestPvalueHelpers:
    def test_chi2_extremes(self):
        assert chi2_pvalue(0.0, 10) == pytest.approx(1.0)
        assert chi2_pvalue(1000.0, 10) < 1e-10

    def test_chi2_median_behaviour(self):
        # Chi-square median is close to dof.
        assert 0.3 < chi2_pvalue(10.0, 10) < 0.6

    def test_chi2_dof_validation(self):
        with pytest.raises(ValueError):
            chi2_pvalue(1.0, 0)

    def test_normal_two_sided(self):
        assert normal_pvalue(0.0) == pytest.approx(1.0)
        assert normal_pvalue(1.96) == pytest.approx(0.05, abs=0.002)

    def test_normal_uniform_convention(self):
        assert normal_uniform_pvalue(0.0) == pytest.approx(0.5)
        assert normal_uniform_pvalue(-10.0) < 0.001
        assert normal_uniform_pvalue(10.0) > 0.999

    def test_ks_uniform_detects_nonuniform(self):
        d, p = ks_uniform(np.full(100, 0.5))
        assert p < 1e-6
        d2, p2 = ks_uniform(np.linspace(0.001, 0.999, 100))
        assert p2 > 0.5

    def test_fisher_combine(self):
        assert fisher_combine([0.5, 0.5]) == pytest.approx(0.5966, abs=0.01)
        assert fisher_combine([1e-10, 0.5]) < 1e-7
        with pytest.raises(ValueError):
            fisher_combine([])

    def test_fisher_uniform_inputs_stay_moderate(self):
        assert 0.3 < fisher_combine([0.4, 0.5, 0.6]) < 0.9


class TestRankProbs:
    def test_32x32_known_values(self):
        """Published DIEHARD probabilities for full-rank 32x32."""
        probs = binary_matrix_rank_probs(32, 32, 29)
        # entries: [<=29, 30, 31, 32]
        assert probs[-1] == pytest.approx(0.2887880951, abs=1e-6)
        assert probs[-2] == pytest.approx(0.5775761902, abs=1e-6)
        assert probs[-3] == pytest.approx(0.1283502644, abs=1e-6)

    def test_probs_sum_to_one(self):
        for shape in [(6, 8), (31, 31), (32, 32), (64, 64)]:
            probs = binary_matrix_rank_probs(*shape, min_rank=min(shape) - 3)
            assert probs.sum() == pytest.approx(1.0)

    def test_6x8_full_rank(self):
        probs = binary_matrix_rank_probs(6, 8, 3)
        assert probs[-1] == pytest.approx(0.773, abs=0.002)

    def test_invalid_min_rank(self):
        with pytest.raises(ValueError):
            binary_matrix_rank_probs(6, 8, 7)


class TestResultTypes:
    def test_pass_band(self):
        assert TestResult("t", 0.5).passed
        assert not TestResult("t", 0.005).passed
        assert not TestResult("t", 0.995).passed
        assert PASS_LO == 0.01 and PASS_HI == 0.99

    def test_battery_aggregation(self):
        b = BatteryResult(generator="g", battery="B")
        b.add(TestResult("a", 0.5))
        b.add(TestResult("b", 0.001))
        assert b.num_tests == 2
        assert b.num_passed == 1
        assert b.pass_string == "1/2"

    def test_battery_ks(self):
        b = BatteryResult(generator="g", battery="B")
        for p in np.linspace(0.01, 0.99, 20):
            b.add(TestResult("t", float(p)))
        assert b.ks_d < 0.15
        assert b.ks_pvalue > 0.5

    def test_battery_ks_detects_skew(self):
        b = BatteryResult(generator="g", battery="B")
        for _ in range(20):
            b.add(TestResult("t", 0.001))
        assert b.ks_d > 0.9

    def test_empty_battery_nan(self):
        b = BatteryResult(generator="g", battery="B")
        assert np.isnan(b.ks_d)

    def test_summary_table_renders(self):
        b = BatteryResult(generator="gen", battery="B")
        b.add(TestResult("a", 0.5, detail="ok"))
        out = b.summary_table()
        assert "gen" in out and "1/1" in out and "pass" in out
