"""Tests for the photon-migration application: physics and conservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.photon import (
    Layer,
    MCPhotonMigration,
    PhotonCosts,
    Tally,
    TissueModel,
    fresnel_reflectance,
    hg_cos_theta,
    photon_times_ms,
    roulette_survival,
    sample_step,
    spin,
    three_layer_skin,
)
from repro.baselines.mt19937 import MT19937


def uniforms(n, seed=1):
    return np.random.Generator(np.random.PCG64(seed)).random(n)


class TestLayers:
    def test_layer_validation(self):
        with pytest.raises(ValueError):
            Layer(n=0.5, mua=1, mus=1, g=0, thickness=1)
        with pytest.raises(ValueError):
            Layer(n=1.4, mua=-1, mus=1, g=0, thickness=1)
        with pytest.raises(ValueError):
            Layer(n=1.4, mua=1, mus=1, g=1.5, thickness=1)
        with pytest.raises(ValueError):
            Layer(n=1.4, mua=1, mus=1, g=0, thickness=0)

    def test_mut_and_albedo(self):
        layer = Layer(n=1.4, mua=2.0, mus=8.0, g=0.9, thickness=1)
        assert layer.mut == 10.0
        assert layer.albedo == pytest.approx(0.8)

    def test_model_boundaries(self):
        model = three_layer_skin()
        b = model.boundaries
        assert b[0] == 0
        assert b[-1] == pytest.approx(model.total_thickness)
        assert (np.diff(b) > 0).all()

    def test_specular_formula(self):
        model = three_layer_skin()
        n2 = model.layers[0].n
        expect = ((1 - n2) / (1 + n2)) ** 2
        assert model.specular_reflectance() == pytest.approx(expect)

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            TissueModel(layers=())


class TestPhysics:
    def test_step_mean(self):
        """E[-ln U / mut] = 1 / mut."""
        s = sample_step(uniforms(200_000), np.array(10.0))
        assert s.mean() == pytest.approx(0.1, rel=0.02)

    def test_step_handles_zero_uniform(self):
        s = sample_step(np.array([0.0]), np.array(1.0))
        assert np.isfinite(s[0])

    def test_hg_isotropic(self):
        c = hg_cos_theta(uniforms(100_000), np.array(0.0))
        assert abs(c.mean()) < 0.01
        assert (c >= -1).all() and (c <= 1).all()

    @pytest.mark.parametrize("g", [0.5, 0.9, -0.4])
    def test_hg_mean_equals_g(self, g):
        """The HG phase function has E[cos theta] = g."""
        c = hg_cos_theta(uniforms(400_000), np.array(g))
        assert c.mean() == pytest.approx(g, abs=0.01)

    def test_fresnel_matched_media(self):
        r = fresnel_reflectance(1.4, 1.4, np.array([0.7]))
        assert r[0] == pytest.approx(0.0)

    def test_fresnel_normal_incidence(self):
        r = fresnel_reflectance(1.0, 1.5, np.array([1.0]))
        assert r[0] == pytest.approx(((1 - 1.5) / (1 + 1.5)) ** 2, abs=1e-6)

    def test_fresnel_total_internal_reflection(self):
        # n1=1.5 -> n2=1.0, incidence beyond the critical angle.
        cos_i = np.array([0.1])  # grazing
        assert fresnel_reflectance(1.5, 1.0, cos_i)[0] == 1.0

    def test_fresnel_range(self):
        r = fresnel_reflectance(1.37, 1.0, uniforms(1000))
        assert (r >= 0).all() and (r <= 1).all()

    def test_spin_preserves_unit_norm(self):
        n = 10_000
        u = uniforms(3 * n).reshape(3, n)
        # random unit vectors
        v = np.random.Generator(np.random.PCG64(3)).normal(size=(3, n))
        v /= np.linalg.norm(v, axis=0)
        cos_t = 2 * u[0] - 1
        nux, nuy, nuz = spin(v[0], v[1], v[2], cos_t, u[1])
        norm = np.sqrt(nux**2 + nuy**2 + nuz**2)
        assert np.allclose(norm, 1.0)

    def test_spin_achieves_requested_angle(self):
        n = 1000
        uz = np.ones(n)
        cos_t = np.full(n, 0.5)
        nux, nuy, nuz = spin(np.zeros(n), np.zeros(n), uz, cos_t, uniforms(n))
        assert np.allclose(nuz, 0.5, atol=1e-9)

    def test_fresnel_reciprocity(self):
        """R(n1->n2 at theta1) == R(n2->n1 at the Snell-matched theta2)."""
        n1, n2 = 1.0, 1.5
        cos1 = np.linspace(0.3, 1.0, 20)
        sin1 = np.sqrt(1 - cos1**2)
        sin2 = n1 / n2 * sin1
        cos2 = np.sqrt(1 - sin2**2)
        r_fwd = fresnel_reflectance(n1, n2, cos1)
        r_bwd = fresnel_reflectance(n2, n1, cos2)
        assert np.allclose(r_fwd, r_bwd, atol=1e-9)

    def test_fresnel_grazing_limit(self):
        """Reflectance tends to 1 at grazing incidence."""
        r = fresnel_reflectance(1.0, 1.5, np.array([1e-6]))
        assert r[0] > 0.99

    def test_hg_density_normalized(self):
        """Empirical HG cos-theta histogram integrates to 1."""
        c = hg_cos_theta(uniforms(200_000), np.array(0.8))
        hist, edges = np.histogram(c, bins=50, range=(-1, 1), density=True)
        integral = (hist * np.diff(edges)).sum()
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_roulette_unbiased(self):
        w = np.full(200_000, 1e-5)
        survive, neww = roulette_survival(w, uniforms(w.size))
        total_after = neww[survive].sum()
        assert total_after == pytest.approx(w.sum(), rel=0.02)

    def test_roulette_leaves_heavy_photons(self):
        w = np.array([0.5, 1e-5])
        survive, neww = roulette_survival(w, np.array([0.99, 0.99]))
        assert survive[0] and neww[0] == 0.5
        assert not survive[1]


class TestTally:
    def test_validation(self):
        with pytest.raises(ValueError):
            Tally(num_layers=0)

    def test_fractions_and_balance(self):
        t = Tally(num_layers=2)
        t.add_launch(10, 0.02)
        t.add_absorption(np.array([0, 1]), np.array([4.0, 2.0]))
        t.add_reflectance(np.array([1.5]))
        t.add_transmittance(np.array([2.3]))
        f = t.fractions()
        assert f["specular"] == pytest.approx(0.02)
        assert f["absorbed"] == pytest.approx(0.6)
        # Balance: 0.2 + 0.6 + 0.15 + 0.23 = 1.0 exactly by construction.
        assert t.energy_balance_error() == pytest.approx(0.0)


class TestSimulation:
    def test_energy_conservation(self):
        sim = MCPhotonMigration(three_layer_skin(), MT19937(7), batch_size=5000)
        res = sim.run(5000)
        assert res.tally.energy_balance_error() < 1e-9

    def test_fractions_plausible(self):
        sim = MCPhotonMigration(three_layer_skin(), MT19937(8), batch_size=20000)
        f = sim.run(20000).fractions()
        assert 0.02 < f["specular"] < 0.03
        assert 0.01 < f["diffuse_reflectance"] < 0.2
        assert 0.3 < f["absorbed"] < 0.7
        assert f["transmittance"] > 0.1

    def test_absorbing_slab_absorbs_everything(self):
        slab = TissueModel(
            layers=(Layer(n=1.0, mua=1000.0, mus=0.001, g=0.0, thickness=10.0),),
        )
        sim = MCPhotonMigration(slab, MT19937(9), batch_size=2000)
        f = sim.run(2000).fractions()
        assert f["absorbed"] > 0.98

    def test_transparent_slab_transmits(self):
        slab = TissueModel(
            layers=(Layer(n=1.0, mua=1e-6, mus=1e-6, g=0.0, thickness=0.1),),
        )
        sim = MCPhotonMigration(slab, MT19937(10), batch_size=2000)
        f = sim.run(2000).fractions()
        assert f["transmittance"] > 0.99

    def test_batching_conserves(self):
        sim = MCPhotonMigration(three_layer_skin(), MT19937(11), batch_size=700)
        res = sim.run(2100)
        assert res.tally.photons_launched == 2100
        assert res.tally.energy_balance_error() < 1e-9

    def test_uniform_consumption_counted(self):
        sim = MCPhotonMigration(three_layer_skin(), MT19937(12), batch_size=1000)
        res = sim.run(1000)
        assert res.uniforms_consumed > 1000  # at least one step draw each
        assert res.uniforms_consumed == sim.uniforms_consumed

    def test_deterministic_given_seed(self):
        a = MCPhotonMigration(three_layer_skin(), MT19937(13), batch_size=3000)
        b = MCPhotonMigration(three_layer_skin(), MT19937(13), batch_size=3000)
        fa = a.run(3000).fractions()
        fb = b.run(3000).fractions()
        assert fa == fb

    def test_validation(self):
        with pytest.raises(ValueError):
            MCPhotonMigration(three_layer_skin(), MT19937(1), batch_size=0)
        sim = MCPhotonMigration(three_layer_skin(), MT19937(1))
        with pytest.raises(ValueError):
            sim.run(0)


class TestTimingModel:
    def test_speedup_about_20pc(self):
        t = photon_times_ms(256_000_000)
        assert 1.1 < t["speedup"] < 1.35

    def test_linear_in_photons(self):
        small = photon_times_ms(1_000_000)["Hybrid PRNG"]
        large = photon_times_ms(4_000_000)["Hybrid PRNG"]
        assert 3 < large / small < 5

    def test_validation(self):
        with pytest.raises(ValueError):
            photon_times_ms(0)
        with pytest.raises(ValueError):
            PhotonCosts(compute_ns=0)
