"""Tests for deterministic fault injection (FaultyBitSource)."""

import numpy as np
import pytest

from repro import obs
from repro.bitsource.counter import SplitMix64Source
from repro.resilience import (
    PROFILES,
    FaultProfile,
    FaultyBitSource,
    InjectedFault,
    get_profile,
    scaled,
)


class TestProfiles:
    def test_named_profiles_exist(self):
        for name in ("none", "flaky", "lossy", "corrupt", "failover",
                     "fatal"):
            assert get_profile(name).name == name

    def test_unknown_profile_lists_known(self):
        with pytest.raises(ValueError, match="flaky"):
            get_profile("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(latency_s=-1)
        with pytest.raises(ValueError):
            FaultProfile(fail_after=-1)

    def test_benign(self):
        assert get_profile("none").benign
        assert not get_profile("flaky").benign
        assert not get_profile("failover").benign

    def test_scaled_clamps(self):
        prof = scaled(get_profile("flaky"), 100.0)
        assert prof.error_rate == 1.0


class TestTransparency:
    def test_none_profile_is_value_transparent(self):
        direct = SplitMix64Source(3).words64(1000)
        faulty = FaultyBitSource(SplitMix64Source(3), "none")
        assert np.array_equal(direct, faulty.words64(1000))

    def test_negative_request_rejected(self):
        faulty = FaultyBitSource(SplitMix64Source(1), "none")
        with pytest.raises(ValueError):
            faulty.words64(-1)


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self):
        def run(fault_seed):
            src = FaultyBitSource(
                SplitMix64Source(1), "flaky", fault_seed=fault_seed
            )
            outcomes = []
            for _ in range(50):
                try:
                    src.words64(8)
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("err")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_reseed_restarts_schedule(self):
        src = FaultyBitSource(SplitMix64Source(1), "flaky", fault_seed=7)

        def outcomes():
            out = []
            for _ in range(30):
                try:
                    src.words64(8)
                    out.append("ok")
                except InjectedFault:
                    out.append("err")
            return out

        first = outcomes()
        src.reseed(1)
        assert outcomes() == first


class TestFailureModes:
    def test_errors_raise_injected_fault(self):
        src = FaultyBitSource(SplitMix64Source(1),
                              FaultProfile(error_rate=1.0))
        with pytest.raises(InjectedFault) as exc_info:
            src.words64(8)
        assert exc_info.value.call_index == 0
        assert src.injected()["errors"] == 1

    def test_fail_after_kills_permanently(self):
        src = FaultyBitSource(SplitMix64Source(1),
                              FaultProfile(fail_after=2))
        src.words64(8)
        src.words64(8)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                src.words64(8)

    def test_short_reads_truncate_but_preserve_stream(self):
        src = FaultyBitSource(SplitMix64Source(1),
                              FaultProfile(short_read_rate=1.0))
        out = src.words64(64)
        assert 1 <= out.size < 64
        # The words that do arrive are the true prefix of the stream.
        assert np.array_equal(out, SplitMix64Source(1).words64(out.size))
        assert src.injected()["short_reads"] == 1

    def test_corruption_flips_exactly_one_bit(self):
        src = FaultyBitSource(SplitMix64Source(1),
                              FaultProfile(corrupt_rate=1.0))
        out = src.words64(64)
        clean = SplitMix64Source(1).words64(64)
        diff = out ^ clean
        assert np.count_nonzero(diff) == 1
        assert bin(int(diff[diff != 0][0])).count("1") == 1

    def test_latency_calls_sleeper(self):
        slept = []
        src = FaultyBitSource(
            SplitMix64Source(1),
            FaultProfile(latency_rate=1.0, latency_s=0.25),
            sleep=slept.append,
        )
        src.words64(8)
        assert slept == [0.25]

    def test_injection_metric(self):
        with obs.observed() as (registry, _):
            src = FaultyBitSource(SplitMix64Source(1),
                                  FaultProfile(error_rate=1.0))
            with pytest.raises(InjectedFault):
                src.words64(8)
        assert registry.counter("repro_faults_injected_total").value == 1
