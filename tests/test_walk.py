"""Tests for the vectorized walk engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitsource.counter import RawCounterSource, SplitMix64Source
from repro.core.expander import GabberGalilExpander
from repro.core.walk import POLICIES, WalkEngine, WalkState


def make_state(n, m=2**32, seed=5):
    g = GabberGalilExpander(m=m)
    eng = WalkEngine(g)
    starts = SplitMix64Source(seed).words64(n)
    return g, eng, eng.make_state(starts)


class CountingSource:
    """Feed wrapper counting the chunks (and so the words) pulled."""

    def __init__(self, inner):
        self.inner = inner
        self.chunks_served = 0

    @property
    def words_served(self):
        return self.chunks_served // 21

    def chunks3(self, n):
        self.chunks_served += n
        return self.inner.chunks3(n)


class TestWalkState:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="identical shapes"):
            WalkState(np.zeros(3, dtype=np.uint32), np.zeros(4, dtype=np.uint32))

    def test_copy_is_independent(self):
        _, eng, st1 = make_state(8)
        st2 = st1.copy()
        eng.walk(st1, SplitMix64Source(1), 4)
        assert not np.array_equal(st1.x, st2.x)

    def test_num_walkers(self):
        _, _, state = make_state(17)
        assert state.num_walkers == 17


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            WalkEngine(GabberGalilExpander(), policy="bogus")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_indices_in_range(self, policy):
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy=policy)
        state = eng.make_state(SplitMix64Source(2).words64(64))
        ks = eng._draw_indices(10000, SplitMix64Source(3), state)
        assert ks.min() >= 0 and ks.max() <= 6

    def test_reject_consumes_extra_chunks(self):
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="reject")
        state = eng.make_state(SplitMix64Source(2).words64(4))
        n = 50000
        eng._draw_indices(n, SplitMix64Source(3), state)
        # Expected overhead factor 8/7; allow generous tolerance.
        assert state.chunks_consumed > n
        assert state.chunks_consumed < n * 1.25

    def test_mod_policy_bias(self):
        """mod-7 makes index 0 about twice as likely as the others."""
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="mod")
        state = eng.make_state(SplitMix64Source(2).words64(4))
        ks = eng._draw_indices(140_000, SplitMix64Source(3), state)
        counts = np.bincount(ks, minlength=7)
        assert counts[0] > 1.7 * counts[1:].mean()

    def test_lazy_policy_bias(self):
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="lazy")
        state = eng.make_state(SplitMix64Source(2).words64(4))
        ks = eng._draw_indices(140_000, SplitMix64Source(3), state)
        counts = np.bincount(ks, minlength=7)
        assert counts[0] > 1.7 * counts[1:].mean()

    def test_expected_chunks_per_step(self):
        g = GabberGalilExpander()
        assert WalkEngine(g, "reject").expected_chunks_per_step() == pytest.approx(
            8 / 7
        )
        assert WalkEngine(g, "mod").expected_chunks_per_step() == 1.0

    def test_bits_per_number(self):
        g = GabberGalilExpander()
        assert WalkEngine(g, "mod").bits_per_number(64) == 192.0
        assert WalkEngine(g, "reject").bits_per_number(64) == pytest.approx(
            192 * 8 / 7
        )


class TestStepping:
    def test_walk_consumption_order_is_step_major(self):
        """walk(l) consumes the chunk stream step-major: step i of a
        bank of n walkers reads chunks [i*n, (i+1)*n) of the canonical
        stream (which, on a fresh source, is chunks3's prefix)."""
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="mod")
        starts = SplitMix64Source(7).words64(33)
        s1 = eng.make_state(starts.copy())
        eng.walk(s1, SplitMix64Source(11), 16)
        s2 = eng.make_state(starts.copy())
        chunks = SplitMix64Source(11).chunks3(16 * 33).reshape(16, 33)
        for i in range(16):
            ks = np.where(chunks[i] >= 7, chunks[i] - 7, chunks[i])
            eng._apply_indices(s2, ks)
        assert np.array_equal(s1.x, s2.x) and np.array_equal(s1.y, s2.y)

    def test_step_equals_walk_of_length_one(self):
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="mod")
        starts = SplitMix64Source(7).words64(12)
        s1 = eng.make_state(starts.copy())
        s2 = eng.make_state(starts.copy())
        eng.step(s1, SplitMix64Source(11))
        eng.walk(s2, SplitMix64Source(11), 1)
        assert np.array_equal(s1.x, s2.x) and np.array_equal(s1.y, s2.y)

    def test_deterministic_given_seed(self):
        g = GabberGalilExpander()
        eng = WalkEngine(g)
        s1 = eng.make_state(SplitMix64Source(5).words64(10))
        s2 = eng.make_state(SplitMix64Source(5).words64(10))
        eng.walk(s1, SplitMix64Source(6), 32)
        eng.walk(s2, SplitMix64Source(6), 32)
        assert np.array_equal(eng.outputs(s1), eng.outputs(s2))

    def test_walkers_are_independent(self):
        """Adding walkers must not change earlier walkers' trajectories
        when each walker consumes its own chunk column (step-major draws).
        """
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="mod")
        starts = SplitMix64Source(7).words64(8)
        s_all = eng.make_state(starts)
        eng.walk(s_all, SplitMix64Source(9), 4)
        # Walk a single-walker state drawing the same chunk schedule:
        # chunks are drawn step-major for 8 walkers; walker 0 sees chunks
        # 0, 8, 16, 24.
        chunks = SplitMix64Source(9).chunks3(4 * 8).reshape(4, 8)
        s_one = eng.make_state(starts[:1])
        for i in range(4):
            eng._apply_indices(s_one, np.where(chunks[i, :1] >= 7,
                                               chunks[i, :1] - 7,
                                               chunks[i, :1]))
        assert s_one.x[0] == s_all.x[0] and s_one.y[0] == s_all.y[0]

    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_small_m_stays_in_range(self, m, length):
        g = GabberGalilExpander(m=m)
        eng = WalkEngine(g)
        state = eng.make_state(SplitMix64Source(1).words64(16))
        eng.walk(state, SplitMix64Source(2), length)
        assert int(state.x.max()) < m and int(state.y.max()) < m

    def test_length_must_be_positive(self):
        _, eng, state = make_state(4)
        with pytest.raises(ValueError):
            eng.walk(state, SplitMix64Source(1), 0)

    def test_steps_counted(self):
        _, eng, state = make_state(10)
        eng.walk(state, SplitMix64Source(1), 6)
        assert state.steps_taken == 60

    def test_outputs_are_packed_vertices(self):
        g, eng, state = make_state(12)
        out = eng.outputs(state)
        x, y = g.unpack(out)
        assert np.array_equal(x.astype(np.uint32), state.x)
        assert np.array_equal(y.astype(np.uint32), state.y)

    def test_counter_feed_still_moves(self):
        """Even a pathological feed advances positions (no stuck states)."""
        g = GabberGalilExpander()
        eng = WalkEngine(g)
        state = eng.make_state(RawCounterSource(0).words64(16))
        before = state.x.copy()
        eng.walk(state, RawCounterSource(1), 8)
        assert not np.array_equal(before, state.x)


class TestStreamContract:
    """The canonical chunk stream: trajectories are a pure function of
    (starts, feed, policy), never of how callers slice their requests.

    Regression tests for the reject-policy walk()/step() divergence:
    walk() used to draw all redraw chunks up front (bulk, walk-level)
    while repeated step() redrew per step, so the two call patterns
    consumed the feed in different orders and produced different walks.
    """

    @pytest.mark.parametrize("policy", POLICIES)
    def test_walk_equals_repeated_step(self, policy):
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy=policy)
        starts = SplitMix64Source(7).words64(33)
        s_walk = eng.make_state(starts.copy())
        s_step = eng.make_state(starts.copy())
        src_walk, src_step = SplitMix64Source(11), SplitMix64Source(11)
        eng.walk(s_walk, src_walk, 24)
        for _ in range(24):
            eng.step(s_step, src_step)
        np.testing.assert_array_equal(s_walk.x, s_step.x)
        np.testing.assert_array_equal(s_walk.y, s_step.y)
        assert s_walk.chunks_consumed == s_step.chunks_consumed
        # Same stream position too: both patterns pulled the same words.
        assert src_walk._state == src_step._state

    @pytest.mark.parametrize("policy", POLICIES)
    def test_split_walks_equal_one_walk(self, policy):
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy=policy)
        starts = SplitMix64Source(3).words64(17)
        s_split = eng.make_state(starts.copy())
        s_bulk = eng.make_state(starts.copy())
        src_split, src_bulk = SplitMix64Source(5), SplitMix64Source(5)
        for length in (1, 7, 2, 13):
            eng.walk(s_split, src_split, length)
        eng.walk(s_bulk, src_bulk, 23)
        np.testing.assert_array_equal(s_split.x, s_bulk.x)
        np.testing.assert_array_equal(s_split.y, s_bulk.y)
        assert src_split._state == src_bulk._state

    def test_copy_carries_the_feed_buffer(self):
        """A copied state replays the same stream as the original --
        including the buffered tail chunks of the last feed word."""
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="reject")
        state = eng.make_state(SplitMix64Source(1).words64(9))
        src = SplitMix64Source(2)
        eng.walk(state, src, 5)  # leaves a partial word in the buffer
        fork = state.copy()
        src_fork = SplitMix64Source(2)
        src_fork._state = np.uint64(src._state)
        eng.walk(state, src, 11)
        eng.walk(fork, src_fork, 11)
        np.testing.assert_array_equal(state.x, fork.x)
        np.testing.assert_array_equal(state.y, fork.y)

    def test_buffered_chunks_are_a_chunks3_prefix(self):
        """Slicing cannot change the stream: any draw pattern consumes
        the same chunk sequence chunks3 yields on a fresh source."""
        from repro.core.walk import WalkEngine as WE

        state = WalkState(
            np.zeros(1, dtype=np.uint32), np.zeros(1, dtype=np.uint32)
        )
        src = SplitMix64Source(9)
        got = np.concatenate([
            WE._take_chunks(state, src, n) for n in (5, 1, 40, 17, 100)
        ])
        np.testing.assert_array_equal(
            got, SplitMix64Source(9).chunks3(163)
        )


class TestFusedKernel:
    """The fused walk kernel must be bit-identical to the reference
    scratch-array path -- same positions, same feed consumption, same
    buffered tail -- under every policy and call pattern."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_reference_kernel(self, policy):
        g = GabberGalilExpander()
        fused = WalkEngine(g, policy=policy, fused=True)
        ref = WalkEngine(g, policy=policy, fused=False)
        assert fused._fused and not ref._fused
        starts = SplitMix64Source(9).words64(50)
        sf = fused.make_state(starts.copy())
        sr = ref.make_state(starts.copy())
        src_f, src_r = SplitMix64Source(4), SplitMix64Source(4)
        for length in (5, 1, 24):
            fused.walk(sf, src_f, length)
            ref.walk(sr, src_r, length)
            np.testing.assert_array_equal(fused.outputs(sf), ref.outputs(sr))
        fused.step(sf, src_f)
        ref.step(sr, src_r)
        np.testing.assert_array_equal(fused.outputs(sf), ref.outputs(sr))
        assert sf.chunks_consumed == sr.chunks_consumed
        assert sf.steps_taken == sr.steps_taken
        np.testing.assert_array_equal(sf.feed_buffer, sr.feed_buffer)

    def test_disabled_for_non_native_modulus(self):
        assert not WalkEngine(GabberGalilExpander(m=97))._fused
        assert WalkEngine(GabberGalilExpander())._fused

    def test_survives_external_position_assignment(self):
        """Snapshot restore assigns fresh x/y arrays straight onto the
        state; the fused kernel must copy them in, not keep walking its
        stale internal views."""
        g = GabberGalilExpander()
        eng = WalkEngine(g)
        state = eng.make_state(SplitMix64Source(1).words64(8))
        eng.walk(state, SplitMix64Source(2), 3)  # fused buffers now live
        fresh = eng.make_state(SplitMix64Source(1).words64(8))
        state.x = fresh.x.copy()
        state.y = fresh.y.copy()
        state.feed_buffer = fresh.feed_buffer
        state.chunks_consumed = fresh.chunks_consumed
        eng.walk(state, SplitMix64Source(2), 3)
        eng.walk(fresh, SplitMix64Source(2), 3)
        np.testing.assert_array_equal(state.x, fresh.x)
        np.testing.assert_array_equal(state.y, fresh.y)

    def test_outputs_into_matches_outputs(self):
        g, eng, state = make_state(20)
        eng.walk(state, SplitMix64Source(3), 4)
        out = np.empty(20, dtype=np.uint64)
        eng.outputs_into(state, out)
        np.testing.assert_array_equal(out, eng.outputs(state))

    def test_outputs_into_non_native_graph(self):
        g, eng, state = make_state(6, m=97)
        eng.walk(state, SplitMix64Source(3), 2)
        out = np.empty(6, dtype=np.uint64)
        eng.outputs_into(state, out)
        np.testing.assert_array_equal(out, eng.outputs(state).astype(np.uint64))

    def test_outputs_into_shape_check(self):
        _, eng, state = make_state(8)
        with pytest.raises(ValueError, match="shape"):
            eng.outputs_into(state, np.empty(9, dtype=np.uint64))


class TestPrefetchSchedule:
    """Refills pull ``F(T)`` total words for cumulative chunk demand
    ``T``: the word need rounded up to a power of two below
    ``PREFETCH_WORDS``, to a quantum multiple above.  Small banks must
    not pay a 4096-word first fetch, and the total pulled must depend
    only on total demand -- never on how requests were sliced."""

    def test_small_bank_first_step_pulls_one_word(self):
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="mod")
        state = eng.make_state(SplitMix64Source(1).words64(16))
        src = CountingSource(SplitMix64Source(2))
        eng.step(state, src)
        assert src.words_served == 1  # ceil(16 / 21) = 1 word, not 4096

    def test_pulled_words_are_a_pure_function_of_demand(self):
        from repro.core.walk import CHUNKS_PER_WORD, WalkEngine as WE

        totals = set()
        for pattern in ([16] * 40, [640], [1, 5, 300, 1, 333]):
            state = WalkState(
                np.zeros(1, dtype=np.uint32), np.zeros(1, dtype=np.uint32)
            )
            src = CountingSource(SplitMix64Source(3))
            for n in pattern:
                WE._take_chunks(state, src, n)
                state.chunks_consumed += n  # the caller contract
            assert sum(pattern) == 640
            totals.add(src.words_served)
        need = -(-640 // CHUNKS_PER_WORD)  # 31 words
        assert totals == {1 << (need - 1).bit_length()}  # every pattern: 32

    def test_overfetch_bounded_above_the_quantum(self):
        from repro.core.walk import (
            CHUNKS_PER_WORD, PREFETCH_WORDS, WalkEngine as WE,
        )

        state = WalkState(
            np.zeros(1, dtype=np.uint32), np.zeros(1, dtype=np.uint32)
        )
        src = CountingSource(SplitMix64Source(3))
        n = 3 * PREFETCH_WORDS * CHUNKS_PER_WORD + 5
        WE._take_chunks(state, src, n)
        need = -(-n // CHUNKS_PER_WORD)
        assert need <= src.words_served < need + PREFETCH_WORDS
