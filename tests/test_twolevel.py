"""Tests for the two-level testing methodology."""

import numpy as np
import pytest

from repro.baselines.lcg import AnsiLcgPRNG
from repro.baselines.mt19937 import MT19937
from repro.quality.nist import run_nist
from repro.quality.twolevel import (
    TwoLevelResult,
    proportion_band,
    two_level_run,
)


def nist_small(g):
    return run_nist(g, n_bits=160_000)


class TestProportionBand:
    def test_band_contains_expected(self):
        lo, hi = proportion_band(100)
        assert lo < 0.99 < hi

    def test_band_narrows_with_k(self):
        lo20, _ = proportion_band(20)
        lo200, _ = proportion_band(200)
        assert lo200 > lo20

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_band(0)


class TestTwoLevelRun:
    def test_good_generator_passes(self):
        res = two_level_run(MT19937(1), nist_small, streams=8)
        assert isinstance(res, TwoLevelResult)
        assert len(res.verdicts) == 15
        assert res.num_passed >= 13

    def test_weak_generator_fails_proportion(self):
        res = two_level_run(AnsiLcgPRNG(1), nist_small, streams=8)
        assert res.num_passed <= 6
        freq = next(v for v in res.verdicts if "frequency" in v.name)
        assert not freq.proportion_ok

    def test_pvalues_collected_per_stream(self):
        res = two_level_run(MT19937(1), nist_small, streams=5)
        for ps in res.per_test_pvalues.values():
            assert len(ps) == 5

    def test_streams_actually_differ(self):
        res = two_level_run(MT19937(1), nist_small, streams=4)
        ps = res.per_test_pvalues["frequency (monobit)"]
        assert len(set(ps)) > 1

    def test_summary_table(self):
        res = two_level_run(MT19937(1), nist_small, streams=4)
        table = res.summary_table()
        assert "Two-level" in table and "proportion" in table

    def test_validation(self):
        with pytest.raises(ValueError):
            two_level_run(MT19937(1), nist_small, streams=0)
