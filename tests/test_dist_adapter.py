"""Tests for the NumPy BitGenerator adapter (``ExpanderBitGen``).

The ctypes capsule is the ecosystem bridge: ``np.random.Generator``
must accept it and produce statistically sound variates off the
expander word stream.  ``ExpanderGenerator`` is the pure-Python
fallback with the same core methods.
"""

import numpy as np
import pytest
import scipy.stats as sps

from repro.core.parallel import ParallelExpanderPRNG
from repro.dist import ExpanderBitGen, ExpanderGenerator, expander_generator


class TestCapsule:
    def test_numpy_generator_accepts_it(self):
        gen = np.random.Generator(ExpanderBitGen(seed=42))
        x = gen.standard_normal(1000)
        assert x.shape == (1000,) and np.isfinite(x).all()

    def test_standard_normal_ks(self):
        gen = np.random.Generator(ExpanderBitGen(seed=42, lanes=16))
        assert sps.kstest(gen.standard_normal(50_000), "norm").pvalue > 0.01

    def test_random_uniform_ks(self):
        gen = np.random.Generator(ExpanderBitGen(seed=43, lanes=16))
        x = gen.random(50_000)
        assert x.min() >= 0.0 and x.max() < 1.0
        assert sps.kstest(x, "uniform").pvalue > 0.01

    def test_integers_range_and_balance(self):
        gen = np.random.Generator(ExpanderBitGen(seed=44, lanes=16))
        x = gen.integers(0, 10, 50_000)
        assert x.min() >= 0 and x.max() < 10
        assert sps.chisquare(np.bincount(x, minlength=10)).pvalue > 0.01

    def test_deterministic_per_seed(self):
        a = np.random.Generator(ExpanderBitGen(seed=7, lanes=16))
        b = np.random.Generator(ExpanderBitGen(seed=7, lanes=16))
        c = np.random.Generator(ExpanderBitGen(seed=8, lanes=16))
        x, y = a.standard_normal(256), b.standard_normal(256)
        np.testing.assert_array_equal(x.view(np.uint64), y.view(np.uint64))
        assert not np.array_equal(x, c.standard_normal(256))

    def test_random_raw_is_the_bank_stream(self):
        """The adapter adds buffering, never a different word stream."""
        bitgen = ExpanderBitGen(seed=11, lanes=16, buffer_words=64)
        reference = ParallelExpanderPRNG(num_threads=16, seed=11)
        np.testing.assert_array_equal(
            bitgen.random_raw(200), reference.generate(200)
        )

    def test_next32_splits_words_low_half_first(self):
        bitgen = ExpanderBitGen(seed=11, lanes=16)
        word = ParallelExpanderPRNG(num_threads=16, seed=11).generate(1)[0]
        lo = bitgen._next32(None)
        hi = bitgen._next32(None)
        assert lo == int(word) & 0xFFFFFFFF
        assert hi == int(word) >> 32

    def test_bad_buffer_words(self):
        with pytest.raises(ValueError):
            ExpanderBitGen(seed=1, buffer_words=0)

    def test_state_is_descriptive(self):
        bitgen = ExpanderBitGen(seed=5, lanes=16)
        state = bitgen.state
        assert state["bit_generator"] == "ExpanderBitGen"
        assert state["seed"] == 5 and state["lanes"] == 16


class TestFallbackGenerator:
    def test_core_methods_shapes_and_bounds(self):
        gen = ExpanderGenerator(seed=3, lanes=16)
        assert gen.random(10).shape == (10,)
        assert gen.random((4, 5)).shape == (4, 5)
        assert 0.0 <= float(gen.random()) < 1.0
        u = gen.uniform(-2.0, 2.0, 1000)
        assert u.min() >= -2.0 and u.max() < 2.0
        e = gen.standard_exponential(1000)
        assert (e > 0).all()
        i = gen.integers(5, size=1000)
        assert i.min() >= 0 and i.max() < 5
        i2 = gen.integers(-3, 3, size=1000)
        assert i2.min() >= -3 and i2.max() < 3

    def test_scalar_returns(self):
        gen = ExpanderGenerator(seed=3, lanes=16)
        assert np.ndim(gen.standard_normal()) == 0
        assert np.ndim(gen.integers(10)) == 0

    def test_normal_moments(self):
        gen = ExpanderGenerator(seed=3, lanes=16)
        x = gen.normal(loc=2.0, scale=0.5, size=50_000)
        assert x.mean() == pytest.approx(2.0, abs=0.02)
        assert x.std() == pytest.approx(0.5, abs=0.02)

    def test_exponential_scale(self):
        gen = ExpanderGenerator(seed=3, lanes=16)
        x = gen.exponential(scale=4.0, size=50_000)
        assert x.mean() == pytest.approx(4.0, abs=0.15)


class TestFactory:
    def test_expander_generator_works_either_way(self):
        gen = expander_generator(seed=9, lanes=16)
        x = gen.standard_normal(4096)
        assert np.isfinite(x).all()
        assert sps.kstest(x, "norm").pvalue > 1e-4

    def test_factory_is_deterministic(self):
        a = expander_generator(seed=9, lanes=16).standard_normal(128)
        b = expander_generator(seed=9, lanes=16).standard_normal(128)
        np.testing.assert_array_equal(a.view(np.uint64), b.view(np.uint64))
