"""Tests for the many-walker parallel generator."""

import numpy as np
import pytest

from repro.bitsource.counter import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG


def make(threads=256, seed=7, **kw):
    return ParallelExpanderPRNG(
        num_threads=threads, bit_source=SplitMix64Source(seed), **kw
    )


class TestConstruction:
    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            ParallelExpanderPRNG(num_threads=0)

    def test_initial_positions_distinct(self):
        p = make(512)
        ids = p.engine.outputs(p.state)
        # 512 random 64-bit start points collide with probability ~2**-46.
        assert np.unique(ids).size == 512


class TestGeneration:
    def test_count_and_dtype(self):
        p = make()
        vals = p.generate(1000)
        assert vals.dtype == np.uint64 and vals.size == 1000

    def test_deterministic(self):
        assert np.array_equal(make(seed=3).generate(500), make(seed=3).generate(500))

    def test_seed_sensitivity(self):
        assert not np.array_equal(
            make(seed=3).generate(100), make(seed=4).generate(100)
        )

    def test_batch_size_does_not_change_values(self):
        a = make(seed=5).generate(700)
        b = make(seed=5).generate(700, batch_size=10)
        assert np.array_equal(a, b)

    def test_non_multiple_of_threads(self):
        p = make(threads=64)
        vals = p.generate(100)  # not a multiple of 64
        assert vals.size == 100

    def test_next_round_size(self):
        p = make(threads=96)
        assert p.next_round().size == 96

    def test_rounds_iterator(self):
        p = make(threads=32)
        chunks = list(p.rounds(3))
        assert len(chunks) == 3
        assert all(c.size == 32 for c in chunks)

    def test_successive_rounds_differ(self):
        p = make(threads=32)
        r1, r2 = p.next_round(), p.next_round()
        assert not np.array_equal(r1, r2)

    def test_numbers_counted(self):
        p = make(threads=32)
        p.generate(100)
        # generate() rounds up to whole thread-rounds internally.
        assert p.numbers_generated == 128

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make().generate(-1)


class TestStreamContract:
    """generate() serves one canonical stream regardless of fetch sizes.

    Regression tests: generate() used to discard the tail of the last
    round whenever ``n`` was not a multiple of ``num_threads``, so
    ``generate(4); generate(4)`` skipped numbers that ``generate(8)``
    emitted -- the fetch size leaked into the stream.
    """

    def test_two_fetches_equal_one(self):
        p, q = make(threads=32, seed=9), make(threads=32, seed=9)
        split = np.concatenate([p.generate(4), p.generate(4)])
        assert np.array_equal(split, q.generate(8))

    def test_arbitrary_split_equals_bulk(self):
        sizes = [1, 37, 2, 300, 64, 96]
        p, q = make(threads=64, seed=10), make(threads=64, seed=10)
        split = np.concatenate([p.generate(s) for s in sizes])
        assert np.array_equal(split, q.generate(sum(sizes)))

    def test_batch_size_orthogonal_to_split(self):
        p, q = make(threads=48, seed=11), make(threads=48, seed=11)
        a = np.concatenate([
            p.generate(30, batch_size=2), p.generate(70, batch_size=5)
        ])
        assert np.array_equal(a, q.generate(100))

    def test_remainder_survives_zero_fetch(self):
        p, q = make(threads=32, seed=12), make(threads=32, seed=12)
        head = p.generate(5)
        mid = p.generate(0)
        assert mid.size == 0
        got = np.concatenate([head, p.generate(27)])
        assert np.array_equal(got, q.generate(32))

    def test_next_round_bypasses_remainder(self):
        """next_round() is the raw per-round API: it neither serves nor
        disturbs generate()'s buffered tail."""
        p = make(threads=16, seed=13)
        ref = make(threads=16, seed=13).generate(48)
        head = p.generate(8)           # buffers 8 tail numbers
        skipped = p.next_round()       # round 2, raw
        tail = p.generate(24)          # rest of round 1, then round 3
        got = np.concatenate([head, tail])
        assert np.array_equal(np.concatenate([got[:16], skipped, got[16:]]),
                              ref)


class TestIntegersRegressions:
    """integers() across power-of-two and full-width ranges.

    Regression tests: ranges whose size divides 2**64 made the
    rejection limit ``(2**64 // size) * size == 2**64`` overflow
    ``np.uint64`` and raise OverflowError (e.g. ``integers(0, 2**32)``).
    """

    def test_power_of_two_range(self):
        vals = make(seed=21).integers(0, 2**32, 1000)
        assert vals.dtype == np.int64
        assert vals.min() >= 0 and vals.max() < 2**32
        # Power-of-two spans take the no-rejection path; the top 32 bits
        # of a healthy stream keep the mean near the middle.
        assert abs(vals.mean() / 2**32 - 0.5) < 0.05

    def test_full_uint64_range(self):
        vals = make(seed=22).integers(0, 2**64, 500)
        assert vals.dtype == np.uint64
        assert vals.max() > np.uint64(2**63)  # top bit exercised

    def test_full_int64_range(self):
        vals = make(seed=23).integers(-(2**63), 2**63, 500)
        assert vals.dtype == np.int64
        assert vals.min() < 0 < vals.max()

    def test_high_uint64_range(self):
        vals = make(seed=24).integers(2**63, 2**64, 200)
        assert vals.dtype == np.uint64
        assert (vals >= np.uint64(2**63)).all()

    def test_span_too_wide_rejected(self):
        with pytest.raises(ValueError, match="spans more than"):
            make().integers(-1, 2**64, 10)

    def test_bounds_not_representable_rejected(self):
        with pytest.raises(ValueError, match="fits neither"):
            make().integers(-1, 2**63 + 1, 10)

    def test_matches_fetch_split(self):
        """integers() draws from the same canonical stream."""
        p, q = make(seed=25), make(seed=25)
        a = np.concatenate([p.integers(0, 1000, 70),
                            p.integers(0, 1000, 30)])
        assert np.array_equal(a, q.integers(0, 1000, 100))


class TestDistributions:
    def test_random_range(self):
        u = make(seed=2).random(5000)
        assert (u >= 0).all() and (u < 1).all()
        assert abs(u.mean() - 0.5) < 0.02

    def test_integers_range_and_coverage(self):
        vals = make(seed=2).integers(5, 15, 2000)
        assert vals.min() >= 5 and vals.max() < 15
        assert np.unique(vals).size == 10

    def test_integers_empty_range(self):
        with pytest.raises(ValueError):
            make().integers(3, 3, 10)

    def test_random_bits_balanced(self):
        bits = make(seed=6).random_bits(80_000)
        assert bits.size == 80_000
        assert abs(bits.mean() - 0.5) < 0.01

    def test_bit_positions_unbiased(self):
        """Every one of the 64 output bit positions should be ~50/50."""
        p = make(threads=512, seed=8)
        vals = p.generate(8192)
        bits = np.unpackbits(vals.astype(">u8").view(np.uint8)).reshape(-1, 64)
        rates = bits.mean(axis=0)
        assert rates.min() > 0.45 and rates.max() < 0.55


class TestStatisticalSanity:
    def test_no_duplicate_outputs_in_small_sample(self):
        """64-bit outputs should essentially never collide in 10**4 draws."""
        vals = make(threads=1024, seed=13).generate(10_000)
        assert np.unique(vals).size == 10_000

    def test_byte_histogram_flat(self):
        vals = make(threads=1024, seed=14).generate(50_000)
        counts = np.bincount(vals.view(np.uint8), minlength=256)
        expected = vals.size * 8 / 256
        chi2 = ((counts - expected) ** 2 / expected).sum()
        # 255 dof: mean 255, std ~22.6; 400 is a ~6.4 sigma allowance.
        assert chi2 < 400
