"""Tests for the many-walker parallel generator."""

import numpy as np
import pytest

from repro.bitsource.counter import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG


def make(threads=256, seed=7, **kw):
    return ParallelExpanderPRNG(
        num_threads=threads, bit_source=SplitMix64Source(seed), **kw
    )


class TestConstruction:
    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            ParallelExpanderPRNG(num_threads=0)

    def test_initial_positions_distinct(self):
        p = make(512)
        ids = p.engine.outputs(p.state)
        # 512 random 64-bit start points collide with probability ~2**-46.
        assert np.unique(ids).size == 512


class TestGeneration:
    def test_count_and_dtype(self):
        p = make()
        vals = p.generate(1000)
        assert vals.dtype == np.uint64 and vals.size == 1000

    def test_deterministic(self):
        assert np.array_equal(make(seed=3).generate(500), make(seed=3).generate(500))

    def test_seed_sensitivity(self):
        assert not np.array_equal(
            make(seed=3).generate(100), make(seed=4).generate(100)
        )

    def test_batch_size_does_not_change_values(self):
        a = make(seed=5).generate(700)
        b = make(seed=5).generate(700, batch_size=10)
        assert np.array_equal(a, b)

    def test_non_multiple_of_threads(self):
        p = make(threads=64)
        vals = p.generate(100)  # not a multiple of 64
        assert vals.size == 100

    def test_next_round_size(self):
        p = make(threads=96)
        assert p.next_round().size == 96

    def test_rounds_iterator(self):
        p = make(threads=32)
        chunks = list(p.rounds(3))
        assert len(chunks) == 3
        assert all(c.size == 32 for c in chunks)

    def test_successive_rounds_differ(self):
        p = make(threads=32)
        r1, r2 = p.next_round(), p.next_round()
        assert not np.array_equal(r1, r2)

    def test_numbers_counted(self):
        p = make(threads=32)
        p.generate(100)
        # generate() rounds up to whole thread-rounds internally.
        assert p.numbers_generated == 128

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make().generate(-1)


class TestDistributions:
    def test_random_range(self):
        u = make(seed=2).random(5000)
        assert (u >= 0).all() and (u < 1).all()
        assert abs(u.mean() - 0.5) < 0.02

    def test_integers_range_and_coverage(self):
        vals = make(seed=2).integers(5, 15, 2000)
        assert vals.min() >= 5 and vals.max() < 15
        assert np.unique(vals).size == 10

    def test_integers_empty_range(self):
        with pytest.raises(ValueError):
            make().integers(3, 3, 10)

    def test_random_bits_balanced(self):
        bits = make(seed=6).random_bits(80_000)
        assert bits.size == 80_000
        assert abs(bits.mean() - 0.5) < 0.01

    def test_bit_positions_unbiased(self):
        """Every one of the 64 output bit positions should be ~50/50."""
        p = make(threads=512, seed=8)
        vals = p.generate(8192)
        bits = np.unpackbits(vals.astype(">u8").view(np.uint8)).reshape(-1, 64)
        rates = bits.mean(axis=0)
        assert rates.min() > 0.45 and rates.max() < 0.55


class TestStatisticalSanity:
    def test_no_duplicate_outputs_in_small_sample(self):
        """64-bit outputs should essentially never collide in 10**4 draws."""
        vals = make(threads=1024, seed=13).generate(10_000)
        assert np.unique(vals).size == 10_000

    def test_byte_histogram_flat(self):
        vals = make(threads=1024, seed=14).generate(50_000)
        counts = np.bincount(vals.view(np.uint8), minlength=256)
        expected = vals.size * 8 / 256
        chi2 = ((counts - expected) ** 2 / expected).sum()
        # 255 dof: mean 255, std ~22.6; 400 is a ~6.4 sigma allowance.
        assert chi2 < 400
