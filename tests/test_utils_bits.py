"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    bits_to_uint64,
    bytes_from_u64,
    extract_3bit_chunks,
    hamming_weight_u64,
    pack_u32_pairs,
    rotl32,
    rotl64,
    u01_from_u32,
    u01_from_u64,
    uint64_to_bits,
    unpack_u64,
)

u64s = st.integers(min_value=0, max_value=2**64 - 1)
u32s = st.integers(min_value=0, max_value=2**32 - 1)


class TestRotations:
    def test_rotl32_known(self):
        assert rotl32(np.uint32(0x80000000), 1) == 1
        assert rotl32(np.uint32(1), 31) == 0x80000000
        assert rotl32(np.uint32(0x12345678), 0) == 0x12345678

    def test_rotl64_known(self):
        assert rotl64(np.uint64(1), 63) == 2**63
        assert rotl64(np.uint64(2**63), 1) == 1

    @given(u32s, st.integers(min_value=0, max_value=64))
    def test_rotl32_inverse(self, x, r):
        once = rotl32(np.uint32(x), r)
        back = rotl32(once, (32 - r) % 32)
        assert int(back) == x

    @given(u64s, st.integers(min_value=0, max_value=128))
    def test_rotl64_preserves_popcount(self, x, r):
        assert int(hamming_weight_u64(rotl64(np.uint64(x), r))[0]) == bin(x).count(
            "1"
        )

    def test_rotl_vectorized(self):
        xs = np.arange(16, dtype=np.uint32)
        out = rotl32(xs, 4)
        assert out.shape == xs.shape
        assert list(out) == [x << 4 for x in range(16)]


class TestPacking:
    @given(u32s, u32s)
    def test_pack_unpack_roundtrip(self, hi, lo):
        packed = pack_u32_pairs(np.uint64(hi), np.uint64(lo))
        h, l = unpack_u64(packed)
        assert int(h) == hi and int(l) == lo

    def test_pack_known(self):
        assert pack_u32_pairs(np.uint64(1), np.uint64(2)) == (1 << 32) | 2

    @given(st.lists(u64s, min_size=1, max_size=20))
    def test_bits_roundtrip(self, values):
        arr = np.array(values, dtype=np.uint64)
        bits = uint64_to_bits(arr)
        assert bits.size == 64 * len(values)
        back = bits_to_uint64(bits)
        assert list(back) == values

    def test_bits_to_uint64_rejects_partial(self):
        with pytest.raises(ValueError):
            bits_to_uint64(np.zeros(63, dtype=np.uint8))


class TestChunks:
    def test_extract_3bit_chunks_known(self):
        # word = chunks 1, 2, 3 packed LSB-first at 3-bit stride
        word = np.uint64(1 | (2 << 3) | (3 << 6))
        chunks = extract_3bit_chunks(np.array([word]), chunks_per_word=4)
        assert list(chunks[0]) == [1, 2, 3, 0]

    @given(st.lists(u64s, min_size=1, max_size=8))
    def test_chunks_in_range(self, values):
        out = extract_3bit_chunks(np.array(values, dtype=np.uint64))
        assert out.shape == (len(values), 21)
        assert out.max() <= 7

    @given(u64s)
    def test_chunks_reconstruct_word(self, value):
        chunks = extract_3bit_chunks(np.array([value], dtype=np.uint64))[0]
        rebuilt = sum(int(c) << (3 * i) for i, c in enumerate(chunks))
        assert rebuilt == value & ((1 << 63) - 1)

    def test_chunks_per_word_bounds(self):
        with pytest.raises(ValueError):
            extract_3bit_chunks(np.array([1], dtype=np.uint64), chunks_per_word=22)
        with pytest.raises(ValueError):
            extract_3bit_chunks(np.array([1], dtype=np.uint64), chunks_per_word=0)


class TestHamming:
    @given(u64s)
    def test_matches_python_popcount(self, x):
        assert int(hamming_weight_u64(x)[0]) == bin(x).count("1")

    def test_vectorized(self):
        xs = np.array([0, 1, 3, 2**64 - 1], dtype=np.uint64)
        assert list(hamming_weight_u64(xs)) == [0, 1, 2, 64]


class TestFloatMaps:
    @given(st.lists(u64s, min_size=1, max_size=50))
    def test_u01_from_u64_range(self, values):
        u = u01_from_u64(np.array(values, dtype=np.uint64))
        assert (u >= 0).all() and (u < 1).all()

    @given(st.lists(u32s, min_size=1, max_size=50))
    def test_u01_from_u32_range(self, values):
        u = u01_from_u32(np.array(values, dtype=np.uint32))
        assert (u >= 0).all() and (u < 1).all()

    def test_u01_top_value(self):
        assert u01_from_u64(np.uint64(2**64 - 1))[0] == pytest.approx(
            1.0, abs=1e-15
        )
        assert u01_from_u64(np.uint64(0))[0] == 0.0

    def test_bytes_from_u64_layout(self):
        b = bytes_from_u64(np.uint64(0x0102030405060708))
        assert list(b) == [8, 7, 6, 5, 4, 3, 2, 1]
