"""Tests for the offline pair-level sentinel detectors."""

import numpy as np
import pytest

from repro.obs.sentinel import pairs


class TestSubstreamCorrelation:
    def test_independent_substreams_pass(self):
        result = pairs.substream_correlation(
            master_seed=1, streams=4, words=1024, lanes=32
        )
        assert result["ok"] is True
        assert result["flagged"] == []
        assert result["pairs_tested"] == 6
        assert result["worst_p"] > pairs.CORRELATION_ALPHA

    def test_identical_streams_are_flagged(self, monkeypatch):
        # Collapse every derived seed onto one value: all "independent"
        # substreams become the same stream, r = 1 for every pair.
        import repro.core.streams as streams_mod

        monkeypatch.setattr(
            streams_mod, "derive_seed", lambda master, index: 42
        )
        result = pairs.substream_correlation(
            master_seed=1, streams=3, words=512, lanes=16
        )
        assert result["ok"] is False
        assert len(result["flagged"]) == 3
        assert all(abs(f["r"]) > 0.99 for f in result["flagged"])

    def test_validation(self):
        with pytest.raises(ValueError):
            pairs.substream_correlation(1, streams=1)
        with pytest.raises(ValueError):
            pairs.substream_correlation(1, streams=2, words=4)


class TestWeakSeedScreen:
    def test_healthy_derivation_is_clean(self):
        result = pairs.weak_seed_screen(master_seed=1, streams=128)
        assert result["ok"] is True
        assert result["seed_collisions"] == 0
        assert result["effective_glibc_collisions"] == 0
        assert result["prefix_collisions"] == 0

    def test_collapsed_derivation_is_flagged(self, monkeypatch):
        import repro.core.streams as streams_mod

        monkeypatch.setattr(
            streams_mod, "derive_seed", lambda master, index: index % 2
        )
        result = pairs.weak_seed_screen(master_seed=1, streams=8)
        assert result["ok"] is False
        assert result["seed_collisions"] == 6
        assert result["prefix_collisions"] == 6
        assert result["flagged"]

    def test_validation(self):
        with pytest.raises(ValueError):
            pairs.weak_seed_screen(1, streams=1)


class TestLagStructure:
    def test_glibc_feed_is_fully_lagged(self):
        result = pairs.glibc_lag_reference(seed=1, n=2048)
        assert result["leaky"] is True
        assert result["fraction"] == 1.0
        assert result["p_value"] < pairs.LAG_ALPHA

    def test_iid_stream_is_clean(self):
        outputs = np.random.default_rng(3).integers(
            0, 2**31, size=4096, dtype=np.uint64
        )
        result = pairs.lag_structure(outputs)
        assert result["leaky"] is False
        assert result["hits"] == 0
        assert result["p_value"] == 1.0

    def test_synthetic_recurrence_is_detected(self):
        # Hand-built TYPE_3 lattice: o[i] = o[i-3] + o[i-31] mod 2**31.
        rng = np.random.default_rng(9)
        o = list(rng.integers(0, 2**31, size=31, dtype=np.uint64))
        for i in range(31, 1024):
            o.append((o[i - 3] + o[i - 31]) % np.uint64(2**31))
        result = pairs.lag_structure(np.array(o, dtype=np.uint64))
        assert result["leaky"] is True
        assert result["fraction"] == 1.0

    def test_expander_output_field_is_clean(self):
        # The end-to-end leak check the CLI runs: the generator's primary
        # 31-bit output field must not carry the feed's lattice.
        from repro.core.parallel import ParallelExpanderPRNG

        words = ParallelExpanderPRNG(num_threads=64, seed=1).generate(4096)
        result = pairs.lag_structure(words >> np.uint64(33))
        assert result["leaky"] is False

    def test_validation(self):
        with pytest.raises(ValueError):
            pairs.lag_structure(np.zeros(10, dtype=np.uint64))
