"""Tests for the multiply-with-carry generator."""

import numpy as np
import pytest

from repro.baselines.mwc import (
    GOOD_MULTIPLIERS,
    Mwc,
    _is_prime,
    is_safeprime_multiplier,
)


class TestPrimality:
    @pytest.mark.parametrize("p", [2, 3, 5, 97, 2**31 - 1, 4294967291])
    def test_primes(self, p):
        assert _is_prime(p)

    @pytest.mark.parametrize("c", [0, 1, 4, 100, 2**31, 561, 41041])
    def test_composites_and_carmichael(self, c):
        assert not _is_prime(c)

    def test_all_table_multipliers_safeprime(self):
        for a in GOOD_MULTIPLIERS:
            assert is_safeprime_multiplier(a), a

    def test_bad_multiplier_detected(self):
        assert not is_safeprime_multiplier(4294967296 // 2)


class TestRecurrence:
    def test_matches_scalar_reference(self):
        """Vectorized MWC equals a pure-Python MWC step for lane 0."""
        g = Mwc(seed=7, lanes=1)
        a = int(g._a[0])
        x = int(g._x[0])
        ref = []
        for _ in range(200):
            x = (x & 0xFFFFFFFF) * a + (x >> 32)
            ref.append(x & 0xFFFFFFFF)
        ours = [int(v) for v in g.u32_array(200)]
        assert ours == ref

    def test_state_never_zero(self):
        g = Mwc(seed=0, lanes=64)
        g.u32_array(1000)
        assert (g._x != 0).all()


class TestLanesAndBehaviour:
    def test_lane_multipliers_cycle_table(self):
        g = Mwc(seed=1, lanes=10)
        assert int(g._a[8]) == GOOD_MULTIPLIERS[0]
        assert int(g._a[9]) == GOOD_MULTIPLIERS[1]

    def test_deterministic(self):
        assert np.array_equal(
            Mwc(seed=5, lanes=4).u32_array(100), Mwc(seed=5, lanes=4).u32_array(100)
        )

    def test_reseed(self):
        g = Mwc(seed=5, lanes=4)
        first = g.u32_array(8).copy()
        g.u32_array(500)
        g.reseed(5)
        assert np.array_equal(g.u32_array(8), first)

    def test_lanes_distinct(self):
        g = Mwc(seed=5, lanes=6)
        block = g.u32_array(6 * 50).reshape(50, 6)
        for i in range(6):
            for j in range(i + 1, 6):
                assert not np.array_equal(block[:, i], block[:, j])

    def test_uniformity_sane(self):
        u = Mwc(seed=2, lanes=16).uniform(100_000)
        assert abs(u.mean() - 0.5) < 0.005

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            Mwc(lanes=0)
