"""End-to-end tests of the typed ``VARIATE`` serving path.

Real sockets against ``serve_background`` servers: the network boundary
must neither change a variate bit nor lose the single word-offset
resume coordinate that raw fetches and typed ops share.
"""

import json
import socket

import numpy as np
import pytest

from repro.serve import ServeClient, ServeConfig, serve_background
from repro.serve import protocol as proto
from repro.serve.session import SessionStream

SEED = 11


def reference(session_id, dist, n, params):
    values, words = SessionStream(session_id, master_seed=SEED).variates(
        dist, n, params
    )
    return values, words


class TestBinaryPath:
    def test_served_normals_match_in_process(self):
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            with ServeClient(h.host, h.port, session="v-ref") as c:
                served = c.fetch_variates("normal", 300, mean=1.0, std=2.0)
                words = c.words_received
        expect, expect_words = reference(
            "v-ref", "normal", 300, {"mean": 1.0, "std": 2.0}
        )
        np.testing.assert_array_equal(
            served.view(np.uint64), expect.view(np.uint64)
        )
        assert words == expect_words

    def test_fetch_sizing_is_variate_transparent(self):
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            with ServeClient(h.host, h.port, session="v-split") as c:
                split = np.concatenate([
                    c.fetch_variates("normal", n) for n in (7, 64, 29)
                ])
        expect, _ = reference("v-split", "normal", 100, {})
        np.testing.assert_array_equal(
            split.view(np.uint64), expect.view(np.uint64)
        )

    @pytest.mark.parametrize("dist,params,dtype", [
        ("uniform01", {}, np.float64),
        ("exponential", {"rate": 2.5}, np.float64),
        ("integers", {"lo": -100, "hi": 100}, np.int64),
        ("integers", {"lo": 2**63, "hi": 2**64}, np.uint64),
    ])
    def test_every_distribution_and_dtype(self, dist, params, dtype):
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            with ServeClient(h.host, h.port, session="v-all") as c:
                served = c.fetch_variates(dist, 64, **params)
        assert served.dtype == dtype
        expect, _ = reference("v-all", dist, 64, params)
        np.testing.assert_array_equal(
            served.view(np.uint64), expect.view(np.uint64)
        )

    def test_mixed_raw_and_typed_share_one_word_coordinate(self):
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            with ServeClient(h.host, h.port, session="v-mix") as c:
                raw1 = c.fetch(50)
                var = c.fetch_variates("normal", 30)
                raw2 = c.fetch(20)
                client_words = c.words_received
                status = c.status()["session"]
        s = SessionStream("v-mix", master_seed=SEED)
        np.testing.assert_array_equal(raw1, s.generate(50))
        expect_var, words_after = s.variates("normal", 30, {})
        np.testing.assert_array_equal(
            var.view(np.uint64), expect_var.view(np.uint64)
        )
        np.testing.assert_array_equal(raw2, s.generate(20))
        assert client_words == s.words_served
        assert status["words_served"] == s.words_served
        assert status["variates_served"] == 30

    def test_bad_params_surface_as_serve_error(self):
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            with ServeClient(h.host, h.port, session="v-err") as c:
                with pytest.raises(proto.ServeError):
                    c.fetch_variates("integers", 4, lo=5, hi=5)
                # The session is still usable afterwards.
                assert c.fetch_variates("uniform01", 4).size == 4

    def test_unknown_distribution_rejected_client_side(self):
        with pytest.raises(proto.ProtocolError):
            proto.pack_variate("cauchy", 4, {})

    def test_variate_before_hello_session_is_refused(self):
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            with socket.create_connection((h.host, h.port), timeout=5) as s:
                s.sendall(proto.pack_variate("uniform01", 4, {}))
                opcode, payload = proto.read_frame_socket(s)
        assert opcode == proto.OP_ERROR


class TestResumeBoundary:
    def test_word_offset_resume_is_forward_replay(self):
        """A fresh session seeked to the journaled word offset continues
        the variate stream bit-identically -- the crash-recovery core,
        without sockets."""
        golden, _ = reference("v-resume", "normal", 50, {})
        s1 = SessionStream("v-resume", master_seed=SEED)
        head, words = s1.variates("normal", 37, {})
        s2 = SessionStream("v-resume", master_seed=SEED)
        s2.seek(words)
        tail, _ = s2.variates("normal", 13, {})
        got = np.concatenate([head, tail])
        np.testing.assert_array_equal(
            got.view(np.uint64), golden.view(np.uint64)
        )

    def test_served_resume_after_reconnect(self):
        """Reconnect and RESUME at the delivered word offset, live."""
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            c = ServeClient(h.host, h.port, session="v-reconn2")
            head = c.fetch_variates("normal", 21)
            mark = c.words_received
            c.close()
            c2 = ServeClient(h.host, h.port, session="v-reconn2")
            ack = c2.resume(offset=mark)
            assert ack.get("offset") == mark
            tail = c2.fetch_variates("normal", 9)
            c2.close()
        golden, _ = reference("v-reconn2", "normal", 30, {})
        got = np.concatenate([head, tail])
        np.testing.assert_array_equal(
            got.view(np.uint64), golden.view(np.uint64)
        )


class TestJsonLines:
    def test_variate_op(self):
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            with socket.create_connection((h.host, h.port), timeout=5) as s:
                f = s.makefile("rwb")
                for msg in (
                    {"op": "hello", "session": "v-json"},
                    {"op": "variate", "dist": "normal", "n": 25,
                     "params": {"mean": 0.0, "std": 1.0}},
                ):
                    f.write(json.dumps(msg).encode() + b"\n")
                    f.flush()
                    reply = json.loads(f.readline())
                assert reply["ok"] and reply["op"] == "variate"
        expect, words = reference("v-json", "normal", 25, {})
        np.testing.assert_allclose(
            np.array(reply["values"]), expect, rtol=0, atol=0
        )
        assert reply["words"] == words

    def test_variate_error_keeps_connection(self):
        with serve_background(ServeConfig(master_seed=SEED)) as h:
            with socket.create_connection((h.host, h.port), timeout=5) as s:
                f = s.makefile("rwb")
                for msg, expect_ok in (
                    ({"op": "hello", "session": "v-json-err"}, True),
                    ({"op": "variate", "dist": "nope", "n": 4}, False),
                    ({"op": "variate", "dist": "uniform01", "n": 4}, True),
                ):
                    f.write(json.dumps(msg).encode() + b"\n")
                    f.flush()
                    reply = json.loads(f.readline())
                    assert reply["ok"] is expect_ok
