"""Known-answer tests for the from-scratch MT19937."""

import numpy as np
import pytest

from repro.baselines.mt19937 import MT19937

# First outputs of the reference mt19937ar.c for init_genrand(5489).
REFERENCE_5489 = [
    3499211612,
    581869302,
    3890346734,
    3586334585,
    545404204,
    4161255391,
    3922919429,
    949333985,
    2715962298,
    1323567403,
]


class TestKnownAnswers:
    def test_reference_sequence(self):
        m = MT19937(5489)
        assert [m.next_u32() for _ in range(10)] == REFERENCE_5489

    def test_matches_numpy_legacy(self):
        """Legacy RandomState uses init_genrand for scalar seeds."""
        for seed in (1, 42, 5489, 123456):
            ref = np.random.RandomState(seed).randint(
                0, 2**32, size=3000, dtype=np.uint64
            )
            ours = MT19937(seed).u32_array(3000).astype(np.uint64)
            assert np.array_equal(ref, ours), seed

    def test_crosses_twist_boundary(self):
        """Draws spanning multiple 624-word refreshes stay correct."""
        ref = np.random.RandomState(7).randint(0, 2**32, size=5000, dtype=np.uint64)
        m = MT19937(7)
        parts = [m.u32_array(100), m.u32_array(1900), m.u32_array(3000)]
        assert np.array_equal(np.concatenate(parts).astype(np.uint64), ref)


class TestBehaviour:
    def test_reseed(self):
        m = MT19937(5489)
        m.u32_array(1000)
        m.reseed(5489)
        assert m.next_u32() == REFERENCE_5489[0]

    def test_not_on_demand(self):
        assert MT19937(1).on_demand is False

    def test_u64_pairs_u32(self):
        a, b = MT19937(3), MT19937(3)
        w = a.u64_array(10)
        v = b.u32_array(20).astype(np.uint64)
        expect = (v[0::2] << np.uint64(32)) | v[1::2]
        assert np.array_equal(w, expect)

    def test_uniform_distribution_sane(self):
        u = MT19937(11).uniform(100_000)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1 / 12) < 0.005

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MT19937(1).u32_array(-5)
