"""Tests for the buffered/asynchronous CPU->GPU feed model."""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.bitsource.buffered import BufferedFeed
from repro.bitsource.counter import SplitMix64Source
from repro.resilience.errors import FeedFailedError, FeedTimeoutError


class FailsAfter(SplitMix64Source):
    """Source that raises on the Nth words64 call (producer-crash stand-in)."""

    def __init__(self, seed, good_calls):
        super().__init__(seed)
        self.good_calls = good_calls
        self.calls = 0

    def words64(self, n):
        self.calls += 1
        if self.calls > self.good_calls:
            raise RuntimeError("source exploded")
        return super().words64(n)


class Blocks(SplitMix64Source):
    """Source that blocks on an event after the first call (silent producer)."""

    def __init__(self, seed):
        super().__init__(seed)
        self.release = threading.Event()
        self.calls = 0

    def words64(self, n):
        self.calls += 1
        if self.calls > 1:
            self.release.wait(10.0)
        return super().words64(n)


class TestValueTransparency:
    def test_values_equal_unbuffered(self):
        direct = SplitMix64Source(3).words64(1000)
        feed = BufferedFeed(SplitMix64Source(3), batch_words=64)
        buffered = feed.words64(1000)
        assert np.array_equal(direct, buffered)

    def test_split_requests_preserve_stream(self):
        direct = SplitMix64Source(3).words64(300)
        feed = BufferedFeed(SplitMix64Source(3), batch_words=128)
        got = np.concatenate([feed.words64(7), feed.words64(200), feed.words64(93)])
        assert np.array_equal(direct, got)

    def test_chunks3_passthrough(self):
        direct = SplitMix64Source(4).chunks3(500)
        feed = BufferedFeed(SplitMix64Source(4), batch_words=32)
        assert np.array_equal(direct, feed.chunks3(500))


class TestStats:
    def test_sync_counts(self):
        feed = BufferedFeed(SplitMix64Source(1), batch_words=100)
        feed.words64(250)
        snap = feed.stats.snapshot()
        assert snap["words_consumed"] == 250
        assert snap["refills"] == 3
        assert snap["words_produced"] == 300
        # In synchronous mode every refill is a demand stall.
        assert snap["stalls"] == 3

    def test_pending_words(self):
        feed = BufferedFeed(SplitMix64Source(1), batch_words=100)
        feed.words64(30)
        assert feed.pending_words == 70


class TestAsyncProducer:
    def test_async_values_identical(self):
        direct = SplitMix64Source(5).words64(2000)
        with BufferedFeed(
            SplitMix64Source(5), batch_words=128, prefetch=3, async_producer=True
        ) as feed:
            got = feed.words64(2000)
        assert np.array_equal(direct, got)

    def test_close_is_idempotent(self):
        feed = BufferedFeed(
            SplitMix64Source(5), batch_words=64, async_producer=True
        )
        feed.close()
        feed.close()

    def test_async_stats_consistent_after_concurrent_drain(self):
        feed = BufferedFeed(
            SplitMix64Source(7), batch_words=128, prefetch=4,
            async_producer=True,
        )
        try:
            drained = 0
            # Uneven request sizes so draws straddle batch boundaries
            # while the producer thread keeps refilling concurrently.
            for size in (7, 333, 64, 500, 96, 1000):
                drained += feed.words64(size).size
        finally:
            feed.close()
            feed.close()  # idempotent even right after a drain
        snap = feed.stats.snapshot()
        assert snap["words_consumed"] == drained
        # Production happens in whole batches and can only run ahead.
        assert snap["words_produced"] == snap["refills"] * 128
        assert snap["words_produced"] >= snap["words_consumed"]
        # A stall is an empty-queue wait; each waits for one refill.
        assert snap["stalls"] <= snap["refills"]

    def test_async_stats_stable_after_close(self):
        with BufferedFeed(
            SplitMix64Source(9), batch_words=64, prefetch=2,
            async_producer=True,
        ) as feed:
            feed.words64(200)
        first = feed.stats.snapshot()
        feed.close()
        assert feed.stats.snapshot() == first

    def test_reseed_async_restarts_producer(self):
        """Reseeding an async feed pauses/restarts the producer in place."""
        with BufferedFeed(
            SplitMix64Source(5), batch_words=64, async_producer=True
        ) as feed:
            feed.words64(500)
            feed.reseed(11)
            got = feed.words64(1000)
            assert feed._producer is not None and feed._producer.is_alive()
        assert np.array_equal(got, SplitMix64Source(11).words64(1000))


class TestFailurePropagation:
    """Satellite regressions: a dying producer must never hang consumers."""

    def test_producer_death_raises_in_consumer_within_deadline(self):
        # Pre-PR, the consumer blocked forever in queue.get(); the
        # conftest hang guard would kill this test.  Now the producer's
        # exception surfaces as FeedFailedError, promptly.
        feed = BufferedFeed(
            FailsAfter(1, good_calls=2), batch_words=64, prefetch=2,
            async_producer=True, get_timeout=10.0,
        )
        try:
            start = time.monotonic()
            with pytest.raises(FeedFailedError, match="source exploded"):
                feed.words64(10_000)
            assert time.monotonic() - start < 5.0
        finally:
            feed.close()

    def test_producer_error_cause_attached(self):
        feed = BufferedFeed(
            FailsAfter(1, good_calls=0), batch_words=64,
            async_producer=True,
        )
        try:
            with pytest.raises(FeedFailedError) as exc_info:
                feed.words64(10)
            assert isinstance(exc_info.value.cause, RuntimeError)
            assert isinstance(exc_info.value.__cause__, RuntimeError)
        finally:
            feed.close()

    def test_failed_feed_keeps_failing_fast(self):
        feed = BufferedFeed(
            FailsAfter(1, good_calls=0), batch_words=64,
            async_producer=True,
        )
        try:
            for _ in range(3):
                start = time.monotonic()
                with pytest.raises(FeedFailedError):
                    feed.words64(10)
                assert time.monotonic() - start < 1.0
        finally:
            feed.close()

    def test_producer_failure_counted(self):
        with obs.observed() as (registry, _):
            feed = BufferedFeed(
                FailsAfter(1, good_calls=0), batch_words=64,
                async_producer=True,
            )
            with pytest.raises(FeedFailedError):
                feed.words64(10)
            feed.close()
        assert feed.stats.snapshot()["producer_failures"] == 1
        assert registry.counter(
            "repro_feed_producer_failures_total").value == 1

    def test_silent_producer_hits_deadline(self):
        src = Blocks(1)
        feed = BufferedFeed(
            src, batch_words=64, prefetch=1, async_producer=True,
            get_timeout=0.3,
        )
        try:
            feed.words64(64)  # first batch flows
            start = time.monotonic()
            with pytest.raises(FeedTimeoutError, match="0.300"):
                feed.words64(10_000)
            assert 0.2 < time.monotonic() - start < 5.0
        finally:
            src.release.set()
            feed.close()

    def test_get_timeout_validation(self):
        with pytest.raises(ValueError):
            BufferedFeed(SplitMix64Source(1), get_timeout=0.0)

    def test_words64_after_close_raises(self):
        feed = BufferedFeed(
            SplitMix64Source(1), batch_words=64, async_producer=True
        )
        feed.words64(64)
        feed.close()
        with pytest.raises(FeedFailedError, match="closed"):
            feed.words64(10_000)

    def test_reseed_after_close_raises(self):
        feed = BufferedFeed(SplitMix64Source(1), batch_words=64)
        feed.close()
        with pytest.raises(FeedFailedError, match="closed"):
            feed.reseed(1)


class TestCloseHandshake:
    """Satellite regression: close() must actually join the producer."""

    def test_close_joins_producer_thread(self):
        feed = BufferedFeed(
            SplitMix64Source(5), batch_words=64, prefetch=2,
            async_producer=True,
        )
        thread = feed._producer
        assert thread is not None
        feed.close()
        assert feed._producer is None
        assert not thread.is_alive()

    def test_close_joins_blocked_producer(self):
        # Tiny queue, slow consumer: the producer is parked in put()
        # when close() runs.  The sentinel handshake must still join it.
        feed = BufferedFeed(
            SplitMix64Source(5), batch_words=8, prefetch=1,
            async_producer=True,
        )
        time.sleep(0.2)  # let the producer fill the queue and block
        thread = feed._producer
        feed.close()
        assert not thread.is_alive()

    def test_close_joins_after_partial_drain(self):
        feed = BufferedFeed(
            SplitMix64Source(5), batch_words=64, prefetch=3,
            async_producer=True,
        )
        feed.words64(100)
        thread = feed._producer
        feed.close()
        assert not thread.is_alive()

    def test_reseed_joins_old_producer_and_starts_new(self):
        feed = BufferedFeed(
            SplitMix64Source(5), batch_words=64, prefetch=2,
            async_producer=True,
        )
        old = feed._producer
        feed.words64(100)
        feed.reseed(3)
        try:
            assert not old.is_alive()
            assert feed._producer is not old
            assert np.array_equal(feed.words64(100),
                                  SplitMix64Source(3).words64(100))
        finally:
            feed.close()


class TestObservability:
    def test_metrics_agree_with_feed_stats(self):
        with obs.observed() as (registry, tracer):
            feed = BufferedFeed(SplitMix64Source(1), batch_words=100)
            feed.words64(250)
        snap = feed.stats.snapshot()
        assert registry.counter("repro_feed_refills_total").value == \
            snap["refills"]
        assert registry.counter("repro_feed_words_produced_total").value == \
            snap["words_produced"]
        assert registry.counter("repro_feed_words_consumed_total").value == \
            snap["words_consumed"]
        assert registry.counter("repro_feed_stalls_total").value == \
            snap["stalls"]
        names = {rec.name for rec in tracer.spans}
        assert {"feed", "transfer"} <= names


class TestReseed:
    def test_sync_reseed_restarts_stream(self):
        feed = BufferedFeed(SplitMix64Source(5), batch_words=64)
        first = feed.words64(10).copy()
        feed.words64(100)
        feed.reseed(5)
        assert np.array_equal(feed.words64(10), first)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            BufferedFeed(SplitMix64Source(1), batch_words=0)
        with pytest.raises(ValueError):
            BufferedFeed(SplitMix64Source(1), prefetch=0)

    def test_negative_request(self):
        feed = BufferedFeed(SplitMix64Source(1))
        with pytest.raises(ValueError):
            feed.words64(-1)
