"""Tests for the buffered/asynchronous CPU->GPU feed model."""

import numpy as np
import pytest

from repro.bitsource.buffered import BufferedFeed
from repro.bitsource.counter import SplitMix64Source


class TestValueTransparency:
    def test_values_equal_unbuffered(self):
        direct = SplitMix64Source(3).words64(1000)
        feed = BufferedFeed(SplitMix64Source(3), batch_words=64)
        buffered = feed.words64(1000)
        assert np.array_equal(direct, buffered)

    def test_split_requests_preserve_stream(self):
        direct = SplitMix64Source(3).words64(300)
        feed = BufferedFeed(SplitMix64Source(3), batch_words=128)
        got = np.concatenate([feed.words64(7), feed.words64(200), feed.words64(93)])
        assert np.array_equal(direct, got)

    def test_chunks3_passthrough(self):
        direct = SplitMix64Source(4).chunks3(500)
        feed = BufferedFeed(SplitMix64Source(4), batch_words=32)
        assert np.array_equal(direct, feed.chunks3(500))


class TestStats:
    def test_sync_counts(self):
        feed = BufferedFeed(SplitMix64Source(1), batch_words=100)
        feed.words64(250)
        snap = feed.stats.snapshot()
        assert snap["words_consumed"] == 250
        assert snap["refills"] == 3
        assert snap["words_produced"] == 300
        # In synchronous mode every refill is a demand stall.
        assert snap["stalls"] == 3

    def test_pending_words(self):
        feed = BufferedFeed(SplitMix64Source(1), batch_words=100)
        feed.words64(30)
        assert feed.pending_words == 70


class TestAsyncProducer:
    def test_async_values_identical(self):
        direct = SplitMix64Source(5).words64(2000)
        with BufferedFeed(
            SplitMix64Source(5), batch_words=128, prefetch=3, async_producer=True
        ) as feed:
            got = feed.words64(2000)
        assert np.array_equal(direct, got)

    def test_close_is_idempotent(self):
        feed = BufferedFeed(
            SplitMix64Source(5), batch_words=64, async_producer=True
        )
        feed.close()
        feed.close()

    def test_reseed_async_rejected(self):
        with BufferedFeed(
            SplitMix64Source(5), batch_words=64, async_producer=True
        ) as feed:
            with pytest.raises(RuntimeError, match="async"):
                feed.reseed(1)


class TestReseed:
    def test_sync_reseed_restarts_stream(self):
        feed = BufferedFeed(SplitMix64Source(5), batch_words=64)
        first = feed.words64(10).copy()
        feed.words64(100)
        feed.reseed(5)
        assert np.array_equal(feed.words64(10), first)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            BufferedFeed(SplitMix64Source(1), batch_words=0)
        with pytest.raises(ValueError):
            BufferedFeed(SplitMix64Source(1), prefetch=0)

    def test_negative_request(self):
        feed = BufferedFeed(SplitMix64Source(1))
        with pytest.raises(ValueError):
            feed.words64(-1)
