"""Tests for the buffered/asynchronous CPU->GPU feed model."""

import numpy as np
import pytest

from repro import obs
from repro.bitsource.buffered import BufferedFeed
from repro.bitsource.counter import SplitMix64Source


class TestValueTransparency:
    def test_values_equal_unbuffered(self):
        direct = SplitMix64Source(3).words64(1000)
        feed = BufferedFeed(SplitMix64Source(3), batch_words=64)
        buffered = feed.words64(1000)
        assert np.array_equal(direct, buffered)

    def test_split_requests_preserve_stream(self):
        direct = SplitMix64Source(3).words64(300)
        feed = BufferedFeed(SplitMix64Source(3), batch_words=128)
        got = np.concatenate([feed.words64(7), feed.words64(200), feed.words64(93)])
        assert np.array_equal(direct, got)

    def test_chunks3_passthrough(self):
        direct = SplitMix64Source(4).chunks3(500)
        feed = BufferedFeed(SplitMix64Source(4), batch_words=32)
        assert np.array_equal(direct, feed.chunks3(500))


class TestStats:
    def test_sync_counts(self):
        feed = BufferedFeed(SplitMix64Source(1), batch_words=100)
        feed.words64(250)
        snap = feed.stats.snapshot()
        assert snap["words_consumed"] == 250
        assert snap["refills"] == 3
        assert snap["words_produced"] == 300
        # In synchronous mode every refill is a demand stall.
        assert snap["stalls"] == 3

    def test_pending_words(self):
        feed = BufferedFeed(SplitMix64Source(1), batch_words=100)
        feed.words64(30)
        assert feed.pending_words == 70


class TestAsyncProducer:
    def test_async_values_identical(self):
        direct = SplitMix64Source(5).words64(2000)
        with BufferedFeed(
            SplitMix64Source(5), batch_words=128, prefetch=3, async_producer=True
        ) as feed:
            got = feed.words64(2000)
        assert np.array_equal(direct, got)

    def test_close_is_idempotent(self):
        feed = BufferedFeed(
            SplitMix64Source(5), batch_words=64, async_producer=True
        )
        feed.close()
        feed.close()

    def test_async_stats_consistent_after_concurrent_drain(self):
        feed = BufferedFeed(
            SplitMix64Source(7), batch_words=128, prefetch=4,
            async_producer=True,
        )
        try:
            drained = 0
            # Uneven request sizes so draws straddle batch boundaries
            # while the producer thread keeps refilling concurrently.
            for size in (7, 333, 64, 500, 96, 1000):
                drained += feed.words64(size).size
        finally:
            feed.close()
            feed.close()  # idempotent even right after a drain
        snap = feed.stats.snapshot()
        assert snap["words_consumed"] == drained
        # Production happens in whole batches and can only run ahead.
        assert snap["words_produced"] == snap["refills"] * 128
        assert snap["words_produced"] >= snap["words_consumed"]
        # A stall is an empty-queue wait; each waits for one refill.
        assert snap["stalls"] <= snap["refills"]

    def test_async_stats_stable_after_close(self):
        with BufferedFeed(
            SplitMix64Source(9), batch_words=64, prefetch=2,
            async_producer=True,
        ) as feed:
            feed.words64(200)
        first = feed.stats.snapshot()
        feed.close()
        assert feed.stats.snapshot() == first

    def test_reseed_async_rejected(self):
        with BufferedFeed(
            SplitMix64Source(5), batch_words=64, async_producer=True
        ) as feed:
            with pytest.raises(RuntimeError, match="async"):
                feed.reseed(1)


class TestObservability:
    def test_metrics_agree_with_feed_stats(self):
        with obs.observed() as (registry, tracer):
            feed = BufferedFeed(SplitMix64Source(1), batch_words=100)
            feed.words64(250)
        snap = feed.stats.snapshot()
        assert registry.counter("repro_feed_refills_total").value == \
            snap["refills"]
        assert registry.counter("repro_feed_words_produced_total").value == \
            snap["words_produced"]
        assert registry.counter("repro_feed_words_consumed_total").value == \
            snap["words_consumed"]
        assert registry.counter("repro_feed_stalls_total").value == \
            snap["stalls"]
        names = {rec.name for rec in tracer.spans}
        assert {"feed", "transfer"} <= names


class TestReseed:
    def test_sync_reseed_restarts_stream(self):
        feed = BufferedFeed(SplitMix64Source(5), batch_words=64)
        first = feed.words64(10).copy()
        feed.words64(100)
        feed.reseed(5)
        assert np.array_equal(feed.words64(10), first)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            BufferedFeed(SplitMix64Source(1), batch_words=0)
        with pytest.raises(ValueError):
            BufferedFeed(SplitMix64Source(1), prefetch=0)

    def test_negative_request(self):
        feed = BufferedFeed(SplitMix64Source(1))
        with pytest.raises(ValueError):
            feed.words64(-1)
