"""Tests for repro.utils.checks and repro.utils.tables."""

import pytest

from repro.utils.checks import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)
from repro.utils.tables import format_series, format_table


class TestChecks:
    def test_positive_accepts(self):
        check_positive("n", 1)
        check_positive("n", 0.5)

    @pytest.mark.parametrize("bad", [0, -1, -0.1])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="n must be positive"):
            check_positive("n", bad)

    def test_in_range(self):
        check_in_range("x", 5, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", -1, 0, 10)

    @pytest.mark.parametrize("good", [1, 2, 4, 1024, 2**32])
    def test_power_of_two_accepts(self, good):
        check_power_of_two("m", good)

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 100])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("m", bad)

    def test_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4.5]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "30" in lines[3]

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.startswith("Table I\n=")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456789e-9], [0.5], [123456.0]])
        assert "1.235e-09" in out
        assert "0.5" in out

    def test_series(self):
        out = format_series("N", [1, 2], {"hybrid": [0.1, 0.2], "mt": [0.3, 0.4]})
        assert "hybrid" in out and "mt" in out
        assert len(out.splitlines()) == 4

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            format_series("N", [1, 2], {"s": [1]})
