"""Smoke tests: every example script runs to completion.

Examples are loaded by file path (the examples directory is not a
package) and driven with reduced workloads where their ``main`` accepts
a size argument.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_examples_directory_contents(self):
        names = {p.stem for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart",
            "list_ranking",
            "photon_migration",
            "quality_report",
            "monte_carlo_pi",
            "amplification",
        } <= names

    def test_list_ranking_small(self, capsys):
        load("list_ranking").main(5_000)
        out = capsys.readouterr().out
        assert "correct" in out and "on-demand improvement" in out

    def test_photon_migration_small(self, capsys):
        load("photon_migration").main(3_000)
        out = capsys.readouterr().out
        assert "energy balance error" in out and "speedup" in out

    def test_quality_report_fast_generator(self, capsys):
        load("quality_report").main("Mersenne Twister", 0.1)
        out = capsys.readouterr().out
        assert "DIEHARD" in out and "SmallCrush" in out

    def test_quality_report_unknown_generator(self):
        with pytest.raises(SystemExit):
            load("quality_report").main("definitely-not-a-generator")

    def test_connected_components_small(self, capsys):
        load("connected_components").main(2_000, 3_000)
        out = capsys.readouterr().out
        assert "union-find cross-check" in out and "OK" in out

    def test_amplification(self, capsys):
        load("amplification").main()
        out = capsys.readouterr().out
        assert "probably prime" in out
        assert "checkpoint resume exact: True" in out

    def test_monte_carlo_components(self):
        """Drive the pi example's pieces at reduced precision."""
        mod = load("monte_carlo_pi")
        from repro.baselines import HybridPRNG

        gen = HybridPRNG(seed=7, num_threads=1 << 14)
        pi_hat, sem, total = mod.estimate_pi(gen, target_sem=8e-3)
        assert abs(pi_hat - 3.14159) < 6 * sem
        val = mod.gaussian_integral(gen, n=50_000)
        assert 0.4 < val < 0.52
