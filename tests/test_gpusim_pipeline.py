"""Tests for the pipeline simulator, timeline, and closed-form model."""

import pytest

from repro.gpusim.calibration import PipelineCosts
from repro.gpusim.pipeline import PipelineConfig, simulate_pipeline
from repro.gpusim.timeline import Interval, Timeline
from repro.hybrid.throughput import (
    hybrid_time_ns,
    optimal_batch_size,
    stage_times_ns,
    utilization_report,
)


class TestTimeline:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            Interval("CPU", 5, 4)

    def test_busy_and_idle(self):
        tl = Timeline()
        tl.add("CPU", 0, 4)
        tl.add("CPU", 6, 10)
        assert tl.busy_time("CPU") == 8
        assert tl.idle_fraction("CPU") == pytest.approx(0.2)

    def test_horizon(self):
        tl = Timeline()
        assert tl.horizon == 0
        tl.add("GPU", 1, 9)
        assert tl.horizon == 9

    def test_render_contains_devices(self):
        tl = Timeline()
        tl.add("CPU", 0, 5, "FEED")
        tl.add("GPU", 5, 10, "GEN")
        out = tl.render(width=40)
        assert "CPU" in out and "GPU" in out and "idle" in out

    def test_render_empty(self):
        assert "empty" in Timeline().render()


class TestPipelineAnchors:
    """The paper's stated performance facts must hold in simulation."""

    def test_headline_throughput(self):
        res = simulate_pipeline(PipelineConfig(total_numbers=10**7, batch_size=100))
        assert res.throughput_gnumbers_s == pytest.approx(0.07, rel=0.05)

    def test_cpu_almost_never_idle(self):
        res = simulate_pipeline(PipelineConfig(total_numbers=10**7, batch_size=100))
        assert res.cpu_idle_fraction < 0.05

    def test_gpu_idle_about_20_percent(self):
        res = simulate_pipeline(PipelineConfig(total_numbers=10**7, batch_size=100))
        assert 0.12 < res.gpu_idle_fraction < 0.28

    def test_figure5_minimum_at_100(self):
        assert optimal_batch_size(10**7) == 100

    def test_figure5_u_shape(self):
        def t(s):
            return hybrid_time_ns(PipelineConfig(total_numbers=10**7, batch_size=s))

        assert t(1) > t(10) > t(100)
        assert t(100) < t(500) < t(1000)


class TestDesMatchesClosedForm:
    @pytest.mark.parametrize("s", [1, 10, 100, 1000])
    def test_agreement_across_batch_sizes(self, s):
        cfg = PipelineConfig(total_numbers=10**6, batch_size=s)
        des = simulate_pipeline(cfg).total_ns
        cf = hybrid_time_ns(cfg)
        assert des == pytest.approx(cf, rel=1e-9)

    def test_agreement_with_custom_costs(self):
        costs = PipelineCosts(
            feed_ns=5.0,
            transfer_ns=1.0,
            generate_ns=9.0,  # GPU-bound regime
            launch_overhead_ns=100.0,
            transfer_latency_ns=50.0,
        )
        cfg = PipelineConfig(total_numbers=10**5, batch_size=10, costs=costs)
        assert simulate_pipeline(cfg).total_ns == pytest.approx(
            hybrid_time_ns(cfg), rel=1e-9
        )

    def test_buffer_depth_does_not_change_completion(self):
        base = PipelineConfig(total_numbers=10**6, batch_size=100)
        deep = PipelineConfig(total_numbers=10**6, batch_size=100, buffer_depth=8)
        assert simulate_pipeline(base).total_ns == pytest.approx(
            simulate_pipeline(deep).total_ns
        )


class TestConfig:
    def test_thread_derivation(self):
        cfg = PipelineConfig(total_numbers=1000, batch_size=100)
        assert cfg.num_threads == 10
        assert cfg.iterations == 100

    def test_thread_override(self):
        cfg = PipelineConfig(total_numbers=1000, batch_size=100, threads=50)
        assert cfg.num_threads == 50
        assert cfg.iterations == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(total_numbers=0)
        with pytest.raises(ValueError):
            PipelineConfig(total_numbers=10, batch_size=0)

    def test_result_properties(self):
        res = simulate_pipeline(PipelineConfig(total_numbers=10**5, batch_size=100))
        assert res.time_ms == pytest.approx(res.total_ns / 1e6)


class TestUtilizationReport:
    def test_fractions_sane(self):
        rep = utilization_report(PipelineConfig(total_numbers=10**6, batch_size=100))
        assert 0 < rep["cpu_busy_fraction"] <= 1.001
        assert 0 < rep["gpu_busy_fraction"] <= 1.001
        assert rep["throughput_gnumbers_s"] > 0

    def test_stage_times_positive(self):
        f, x, g, init = stage_times_ns(
            PipelineConfig(total_numbers=10**6, batch_size=100)
        )
        assert f > 0 and x > 0 and g > 0 and init > 0

    def test_feed_is_bottleneck_at_optimum(self):
        """At S=100 the pipeline is feed-bound (CPU ~100% busy)."""
        f, x, g, _ = stage_times_ns(
            PipelineConfig(total_numbers=10**7, batch_size=100)
        )
        assert f > x and f > g
