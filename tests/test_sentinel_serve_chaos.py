"""Chaos and end-to-end tests for the served-randomness sentinel.

Two sides of one guarantee:

* a silently degraded feed (bias that raises no exception, so the
  resilience layer's health stays OK) must be caught *statistically*
  within a bounded served-word budget; and
* the canonical streams must never trip the sentinel -- on any kernel
  variant -- and installing it must not change a single served bit.
"""

import numpy as np
import pytest

from repro.bitsource.counter import SplitMix64Source
from repro.bitsource.glibc import GlibcRandom
from repro.core.parallel import ParallelExpanderPRNG
from repro.obs.sentinel import SentinelConfig, StreamSentinel, Verdict
from repro.resilience.faults import FaultyBitSource
from repro.serve import ServeClient, ServeConfig, serve_background
from repro.serve.session import SessionStream


def _biased_factory(seed):
    """A feed whose words are AND-masked to zero: no exception is ever
    raised, so only statistics can catch it."""
    return FaultyBitSource(SplitMix64Source(seed), "biased")


class TestChaosDetection:
    def test_silently_biased_feed_goes_stat_bad_within_budget(self):
        """Acceptance: bias that the fault layer cannot see (feed_health
        stays OK) drives the sentinel to STAT_BAD -- and the session and
        server to FAILED -- within a bounded number of served words."""
        config = ServeConfig(
            master_seed=1,
            source_factory=_biased_factory,
            failover=False,
            sentinel_sample=2,
            sentinel_window=512,
        )
        budget_words = 8192  # detection must land inside this many words
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="sick") as c:
                served = 0
                status = None
                while served < budget_words:
                    c.fetch(512)
                    served += 512
                    status = c.status()
                    if status["session"]["sentinel"]["verdict"] == "STAT_BAD":
                        break
                else:
                    pytest.fail(
                        f"sentinel missed the biased feed within "
                        f"{budget_words} served words"
                    )
        sent = status["session"]["sentinel"]
        assert sent["verdict"] == "STAT_BAD"
        assert sent["failures"] >= 1
        # The fault layer saw nothing wrong; statistics did.
        assert status["session"]["feed_health"] == "OK"
        assert status["session"]["health"] == "FAILED"
        assert status["server"]["health"] == "FAILED"
        summary = status["server"]["sentinel"]
        assert summary["enabled"] is True
        assert summary["worst"] == "STAT_BAD"
        assert summary["bad"] >= 1

    def test_healthy_session_unaffected_by_bad_one(self):
        """Sentinel verdicts are per-session: a biased session must not
        poison the health of a clean one."""
        config = ServeConfig(
            master_seed=1,
            sentinel_sample=2,
            sentinel_window=512,
        )
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="fine") as c:
                for _ in range(4):
                    c.fetch(512)
                status = c.status()
        assert status["session"]["sentinel"]["verdict"] == "STAT_OK"
        assert status["session"]["health"] == "OK"
        assert status["server"]["health"] == "OK"


class TestCanonicalNeverFlips:
    """The sentinel must stay STAT_OK on every canonical kernel variant.

    sample_every=1 (every word inspected) over ~64k words per variant:
    16 windows of 4096, a far harder setting than the serving default.
    """

    WORDS = 1 << 16

    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("blocked", [True, False])
    def test_expander_stream_stays_stat_ok(self, fused, blocked):
        s = StreamSentinel(
            SentinelConfig(window_words=4096, sample_every=1),
            name=f"fused={fused},blocked={blocked}",
        )
        prng = ParallelExpanderPRNG(
            num_threads=4096,
            seed=2,
            bit_source=GlibcRandom(2, blocked=blocked),
            fused=fused,
        )
        done = 0
        while done < self.WORDS:
            n = min(8192, self.WORDS - done)
            s.observe(prng.generate(n))
            done += n
        assert s.verdict is Verdict.STAT_OK, s.state()
        assert s.state()["windows"] == self.WORDS // 4096
        assert s.state()["failures"] == 0


class TestServedStreamUnchanged:
    def test_sentinel_on_off_serve_identical_values(self):
        """The tap is read-only: the same session id serves bit-identical
        values with the sentinel enabled and disabled."""
        with serve_background(
            ServeConfig(master_seed=7, sentinel=True, sentinel_sample=1)
        ) as h:
            with ServeClient(h.host, h.port, session="gold") as c:
                with_sentinel = c.fetch(1024)
        with serve_background(
            ServeConfig(master_seed=7, sentinel=False)
        ) as h:
            with ServeClient(h.host, h.port, session="gold") as c:
                without = c.fetch(1024)
        np.testing.assert_array_equal(with_sentinel, without)
        reference = SessionStream("gold", master_seed=7).generate(1024)
        np.testing.assert_array_equal(with_sentinel, reference)

    def test_disabled_sentinel_absent_from_status(self):
        with serve_background(ServeConfig(master_seed=1, sentinel=False)) as h:
            with ServeClient(h.host, h.port, session="plain") as c:
                c.fetch(64)
                status = c.status()
        assert "sentinel" not in status["session"]
        assert status["server"]["sentinel"]["enabled"] is False
        assert status["session"]["health"] == "OK"


class TestStatusSchema:
    def test_session_sentinel_state_shape(self):
        with serve_background(
            ServeConfig(master_seed=3, sentinel_sample=1, sentinel_window=512)
        ) as h:
            with ServeClient(h.host, h.port, session="schema") as c:
                c.fetch(1024)
                status = c.status()
        sent = status["session"]["sentinel"]
        assert set(sent) >= {
            "verdict",
            "windows",
            "failures",
            "words_seen",
            "words_sampled",
            "worst_p",
            "entropy_rate",
            "last_window",
            "sample_every",
            "window_words",
        }
        assert sent["words_seen"] == 1024
        assert sent["sample_every"] == 1
        assert sent["window_words"] == 512
        server = status["server"]["sentinel"]
        assert set(server) >= {
            "enabled",
            "worst",
            "suspect",
            "bad",
            "windows_total",
            "failures_total",
        }
