"""Zero-copy delivery: ``generate_into`` across the stack.

The in-place variants must be *the same stream* as their allocating
counterparts -- remainder buffering included -- while rejecting buffers
they cannot fill safely (wrong dtype, shape, layout, writability).
Covers :class:`ParallelExpanderPRNG`, :class:`ShardedEngine`,
:class:`HybridScheduler`, and the :class:`HybridPRNG` adapter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel import ParallelExpanderPRNG
from repro.engine import EngineConfig, ShardedEngine, serial_reference


def make(threads=32, seed=3, **kw):
    return ParallelExpanderPRNG(num_threads=threads, seed=seed, **kw)


class TestValidation:
    @pytest.fixture()
    def prng(self):
        return make()

    def test_rejects_non_array(self, prng):
        with pytest.raises(TypeError, match="numpy array"):
            prng.generate_into([0] * 8)

    def test_rejects_wrong_dtype(self, prng):
        with pytest.raises(TypeError, match="uint64"):
            prng.generate_into(np.empty(8, dtype=np.uint32))

    def test_rejects_2d(self, prng):
        with pytest.raises(ValueError, match="one-dimensional"):
            prng.generate_into(np.empty((2, 4), dtype=np.uint64))

    def test_rejects_non_contiguous(self, prng):
        with pytest.raises(ValueError, match="contiguous"):
            prng.generate_into(np.empty(16, dtype=np.uint64)[::2])

    def test_rejects_readonly(self, prng):
        buf = np.empty(8, dtype=np.uint64)
        buf.flags.writeable = False
        with pytest.raises(ValueError, match="writeable"):
            prng.generate_into(buf)

    def test_rejected_buffer_does_not_advance_stream(self, prng):
        ref = make().generate(8)
        with pytest.raises(TypeError):
            prng.generate_into(np.empty(8, dtype=np.uint32))
        assert np.array_equal(prng.generate(8), ref)

    def test_empty_buffer_is_a_noop(self, prng):
        ref = make().generate(8)
        prng.generate_into(np.empty(0, dtype=np.uint64))
        assert np.array_equal(prng.generate(8), ref)


class TestParallelStream:
    def test_equals_generate(self):
        buf = np.empty(100, dtype=np.uint64)
        make().generate_into(buf)
        assert np.array_equal(buf, make().generate(100))

    def test_remainder_interaction(self):
        """generate(4) then generate_into(buf8) equals generate(12)."""
        p, q = make(), make()
        head = p.generate(4)
        buf = np.empty(8, dtype=np.uint64)
        p.generate_into(buf)
        want = q.generate(12)
        assert np.array_equal(np.concatenate([head, buf]), want)

    def test_leaves_a_remainder_for_generate(self):
        p, q = make()  , make()
        buf = np.empty(5, dtype=np.uint64)
        p.generate_into(buf)
        got = np.concatenate([buf, p.generate(27)])
        assert np.array_equal(got, q.generate(32))

    def test_batch_size_cannot_change_values(self):
        p, q = make(), make()
        a = np.empty(300, dtype=np.uint64)
        b = np.empty(300, dtype=np.uint64)
        p.generate_into(a, batch_size=7)
        q.generate_into(b)
        assert np.array_equal(a, b)

    def test_writes_only_the_given_slice(self):
        pool = np.zeros(96, dtype=np.uint64)
        make().generate_into(pool[32:64])
        assert not pool[:32].any() and not pool[64:].any()
        assert np.array_equal(pool[32:64], make().generate(32))

    def test_fused_flag_does_not_change_values(self):
        a = np.empty(200, dtype=np.uint64)
        b = np.empty(200, dtype=np.uint64)
        make(fused=True).generate_into(a)
        make(fused=False).generate_into(b)
        assert np.array_equal(a, b)


class TestEngineStream:
    CONFIG = EngineConfig(seed=5, shards=2, lanes=8, ring_slots=2)

    def test_matches_serial_reference(self):
        want = serial_reference(self.CONFIG, 200)
        buf = np.empty(200, dtype=np.uint64)
        with ShardedEngine(self.CONFIG) as eng:
            eng.generate_into(buf)
        assert np.array_equal(buf, want)

    def test_split_fills_equal_one_fill(self):
        want = serial_reference(self.CONFIG, 100)
        parts = []
        with ShardedEngine(self.CONFIG) as eng:
            for n in (7, 16, 33, 44):
                buf = np.empty(n, dtype=np.uint64)
                eng.generate_into(buf)
                parts.append(buf)
        assert np.array_equal(np.concatenate(parts), want)

    def test_mixes_with_generate(self):
        want = serial_reference(self.CONFIG, 96)
        with ShardedEngine(self.CONFIG) as eng:
            head = eng.generate(20)
            buf = np.empty(50, dtype=np.uint64)
            eng.generate_into(buf)
            tail = eng.generate(26)
        assert np.array_equal(np.concatenate([head, buf, tail]), want)

    def test_validation(self):
        with ShardedEngine(self.CONFIG) as eng:
            with pytest.raises(TypeError, match="uint64"):
                eng.generate_into(np.empty(8, dtype=np.float64))
            with pytest.raises(ValueError, match="contiguous"):
                eng.generate_into(np.empty(16, dtype=np.uint64)[::2])


class TestHigherLayers:
    def test_scheduler_generate_into(self):
        from repro.hybrid.scheduler import HybridScheduler

        with HybridScheduler(seed=11) as a, HybridScheduler(seed=11) as b:
            plan = a.plan(500)
            buf = np.empty(500, dtype=np.uint64)
            a.generate_into(plan, buf)
            want = b.generate(b.plan(500))
        assert np.array_equal(buf, want)

    def test_scheduler_size_mismatch(self):
        from repro.hybrid.scheduler import HybridScheduler

        with HybridScheduler(seed=11) as sched:
            plan = sched.plan(500)
            with pytest.raises(ValueError, match="slots"):
                sched.generate_into(plan, np.empty(8, dtype=np.uint64))

    def test_adapter_u64_into(self):
        from repro.baselines.hybrid_adapter import HybridPRNG

        gen_a = HybridPRNG(seed=2, num_threads=64)
        gen_b = HybridPRNG(seed=2, num_threads=64)
        buf = np.empty(100, dtype=np.uint64)
        gen_a.u64_into(buf)
        assert np.array_equal(buf, gen_b.u64_array(100))
