"""Tests for the Monte Carlo apps: pi estimation and the per-pencil GRF.

These pin the determinism properties the apps exist to demonstrate:
chunk- and schedule-invariance for pi, pencil-key stability and
oversampling invariance for the Gaussian random field.
"""

import numpy as np
import pytest

from repro.apps.montecarlo import (
    estimate_pi,
    gaussian_field_modes,
    pencil_modes,
    pencil_seed,
    realize_field,
)
from repro.apps.montecarlo.pi import stream_hits


class TestPi:
    def test_estimate_converges(self):
        result = estimate_pi(200_000, master_seed=7, substreams=4)
        assert result.error < 0.02
        assert result.points == 200_000
        assert sum(result.per_stream_points) == 200_000
        assert sum(result.per_stream_hits) == result.hits

    def test_chunk_invariance(self):
        """A substream's hit count cannot depend on draw chunking."""
        a = stream_hits(7, 0, 50_000, chunk=50_000)
        b = stream_hits(7, 0, 50_000, chunk=777)
        c = stream_hits(7, 0, 50_000, chunk=1)
        assert a == b == c

    def test_schedule_invariance(self):
        """Substreams are pure functions of (seed, index): computing
        them in any order -- here reversed -- changes nothing."""
        forward = [stream_hits(7, i, 10_000) for i in range(4)]
        backward = [stream_hits(7, i, 10_000) for i in reversed(range(4))]
        assert forward == list(reversed(backward))

    def test_deterministic_end_to_end(self):
        r1 = estimate_pi(40_000, master_seed=3, substreams=5)
        r2 = estimate_pi(40_000, master_seed=3, substreams=5)
        assert r1.hits == r2.hits
        assert r1.per_stream_hits == r2.per_stream_hits

    def test_substreams_are_independent(self):
        hits = [stream_hits(3, i, 10_000) for i in range(6)]
        assert len(set(hits)) > 1  # not all identical

    def test_uneven_split_covers_every_point(self):
        result = estimate_pi(10_007, master_seed=1, substreams=4)
        assert sum(result.per_stream_points) == 10_007
        assert max(result.per_stream_points) - min(
            result.per_stream_points
        ) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_pi(0)
        with pytest.raises(ValueError):
            estimate_pi(100, substreams=0)
        with pytest.raises(ValueError):
            stream_hits(1, 0, 100, chunk=0)


class TestPencils:
    def test_prefix_stability(self):
        """A longer pencil extends a shorter one bit-for-bit: mode kx
        always consumes variates 2kx, 2kx+1 of its pencil stream."""
        short = pencil_modes(7, 3, 9)
        long = pencil_modes(7, 3, 17)
        np.testing.assert_array_equal(
            short.view(np.float64), long[:9].view(np.float64)
        )

    def test_key_is_the_signed_frequency(self):
        assert pencil_seed(7, 3) != pencil_seed(7, -3)
        assert pencil_seed(7, 0) != pencil_seed(8, 0)
        a = pencil_modes(7, -5, 8)
        b = pencil_modes(7, -5, 8)
        np.testing.assert_array_equal(
            a.view(np.float64), b.view(np.float64)
        )

    def test_unit_variance_complex_modes(self):
        z = pencil_modes(11, 2, 50_000)
        assert np.mean(np.abs(z) ** 2) == pytest.approx(1.0, abs=0.02)
        assert abs(z.real.mean()) < 0.01 and abs(z.imag.mean()) < 0.01


class TestFieldModes:
    def test_oversampling_invariance(self):
        """The zeldovich-PLT property: the 32-grid reproduces every
        strict-interior mode of the 16-grid bit-for-bit."""
        n, m = 16, 32
        small = gaussian_field_modes(n, master_seed=7)
        big = gaussian_field_modes(m, master_seed=7)
        checked = 0
        for r in range(n):
            ky = r if r <= n // 2 else r - n
            if abs(ky) >= n // 2:
                continue  # the coarse grid's own Nyquist pencil
            rb = ky if ky >= 0 else ky + m
            np.testing.assert_array_equal(
                small[r, : n // 2].view(np.float64),
                big[rb, : n // 2].view(np.float64),
            )
            checked += 1
        assert checked == n - 1

    def test_hermitian_symmetry_gives_real_fields(self):
        modes = gaussian_field_modes(16, master_seed=7)
        half = 8
        for col in (0, half):
            for r in range(1, half):
                assert modes[16 - r, col] == np.conj(modes[r, col])
            for r in (0, half):
                assert modes[r, col].imag == 0.0
        # Round-trip: the realized field is exactly the real transform.
        field = np.fft.irfft2(modes, s=(16, 16))
        back = np.fft.fft2(field)
        assert float(np.abs(back.imag[0, 0])) < 1e-12

    def test_odd_grid_rejected(self):
        with pytest.raises(ValueError):
            gaussian_field_modes(15)

    def test_deterministic(self):
        a = gaussian_field_modes(8, master_seed=5)
        b = gaussian_field_modes(8, master_seed=5)
        np.testing.assert_array_equal(
            a.view(np.float64), b.view(np.float64)
        )


class TestRealizeField:
    def test_shape_dtype_and_zero_mean(self):
        field = realize_field(32, master_seed=7)
        assert field.shape == (32, 32) and field.dtype == np.float64
        # P(0) = 0: the DC mode is zeroed, so the field mean is ~0.
        assert abs(field.mean()) < 1e-12

    def test_custom_power_spectrum(self):
        flat = realize_field(16, master_seed=7, power=lambda k: k * 0 + 1.0)
        def steep_power(k):
            p = np.zeros_like(k)
            np.divide(1.0, k**4, out=p, where=k > 0)
            return p

        steep = realize_field(16, master_seed=7, power=steep_power)
        assert flat.std() > 0 and steep.std() > 0
        assert not np.array_equal(flat, steep)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            realize_field(16, master_seed=9), realize_field(16, master_seed=9)
        )
