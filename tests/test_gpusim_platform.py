"""Tests for device specs, kernel/PCIe cost models and calibration."""

import pytest

from repro.gpusim.calibration import (
    PAPER_THROUGHPUT_GN_S,
    BaselineCosts,
    PipelineCosts,
)
from repro.gpusim.device import CpuSpec, GpuSpec, HybridPlatform, PcieLink
from repro.gpusim.kernel import KernelCostModel
from repro.gpusim.pcie import TransferModel, bits_per_number


class TestDeviceSpecs:
    def test_tesla_c1060(self):
        gpu = GpuSpec.tesla_c1060()
        assert gpu.num_sms == 30
        assert gpu.total_cores == 240  # Section II
        assert gpu.warp_size == 32
        assert gpu.max_resident_threads == 30 * 1024

    def test_i7_980(self):
        cpu = CpuSpec.intel_i7_980()
        assert cpu.num_cores == 6
        assert cpu.clock_ghz == pytest.approx(3.4)

    def test_pcie2(self):
        link = PcieLink.pcie2_x16()
        assert link.bandwidth_gb_s == 8.0  # Section II

    def test_transfer_time_scales(self):
        link = PcieLink.pcie2_x16()
        t1 = link.transfer_time_us(1e6)
        t2 = link.transfer_time_us(2e6)
        assert t2 > t1
        assert t2 - t1 == pytest.approx(1e6 / 8e3)

    def test_transfer_negative_bytes(self):
        with pytest.raises(ValueError):
            PcieLink.pcie2_x16().transfer_time_us(-1)

    def test_platform_bundle(self):
        p = HybridPlatform.paper_platform()
        assert p.gpu.name.startswith("Nvidia")
        assert p.cpu.name.startswith("Intel")

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            GpuSpec("x", 0, 8, 32, 1.0, 1024, 4.0)
        with pytest.raises(ValueError):
            CpuSpec("x", -1, 3.0, 10.0)
        with pytest.raises(ValueError):
            PcieLink(0, 1)


class TestCalibration:
    def test_feed_rate_matches_headline_throughput(self):
        """FEED (the bottleneck) must yield 0.07 GNumbers/s."""
        costs = PipelineCosts()
        assert 1.0 / costs.feed_ns == pytest.approx(PAPER_THROUGHPUT_GN_S)

    def test_figure4_ratios_preserved(self):
        costs = PipelineCosts()
        assert costs.feed_ns / costs.transfer_ns == pytest.approx(81.2 / 6.2)
        assert costs.generate_ns / costs.feed_ns == pytest.approx(0.8)

    def test_occupancy_clamps_at_one(self):
        costs = PipelineCosts()
        assert costs.occupancy(10**9) == 1.0
        assert 0 < costs.occupancy(100) < 1

    def test_occupancy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PipelineCosts().occupancy(0)

    def test_effective_generate_cost_inflates(self):
        costs = PipelineCosts()
        low = costs.generate_ns_effective(costs.full_occupancy_threads)
        high = costs.generate_ns_effective(costs.full_occupancy_threads // 4)
        assert high == pytest.approx(4 * low)

    def test_baselines_are_slower(self):
        b = BaselineCosts()
        c = PipelineCosts()
        assert b.mersenne_twister_ns > c.feed_ns
        assert b.curand_ns > c.feed_ns


class TestKernelModel:
    def test_agrees_with_calibration_at_full_occupancy(self):
        """First-principles kernel model ~ calibrated generate_ns."""
        model = KernelCostModel(GpuSpec.tesla_c1060())
        per_number = model.number_time_ns(GpuSpec.tesla_c1060().max_resident_threads)
        assert per_number == pytest.approx(PipelineCosts().generate_ns, rel=0.02)

    def test_occupancy_penalty(self):
        model = KernelCostModel(GpuSpec.tesla_c1060())
        full = model.number_time_ns(30 * 1024)
        half = model.number_time_ns(15 * 1024)
        assert half == pytest.approx(2 * full)

    def test_kernel_time_composition(self):
        model = KernelCostModel(GpuSpec.tesla_c1060())
        t = model.kernel_time_ns(threads=30 * 1024, numbers_per_thread=10)
        expected = model.launch_overhead_ns + 30 * 1024 * 10 * model.number_time_ns(
            30 * 1024
        )
        assert t == pytest.approx(expected)

    def test_validation(self):
        model = KernelCostModel(GpuSpec.tesla_c1060())
        with pytest.raises(ValueError):
            model.number_time_ns(0)
        with pytest.raises(ValueError):
            model.kernel_time_ns(10, 0)


class TestTransferModel:
    def test_bits_per_number(self):
        assert bits_per_number(64, "mod") == 192
        assert bits_per_number(64, "reject") == pytest.approx(192 * 8 / 7)

    def test_bytes_per_number(self):
        tm = TransferModel(PcieLink.pcie2_x16(), policy="mod")
        assert tm.bytes_per_number == pytest.approx(24.0)

    def test_batch_time_includes_latency(self):
        tm = TransferModel(PcieLink.pcie2_x16())
        small = tm.batch_time_ns(1)
        assert small > PcieLink.pcie2_x16().latency_us * 1e3 * 0.99

    def test_per_number_bandwidth_cost(self):
        tm = TransferModel(PcieLink.pcie2_x16(), policy="mod")
        # 24 bytes at 8 GB/s = 3 ns.
        assert tm.per_number_ns() == pytest.approx(3.0)
