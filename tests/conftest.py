"""Shared fixtures for the test suite.

The per-test hang guard (default timeout) lives in the repository-root
``conftest.py`` so it also covers the benchmarks directory.
"""

import numpy as np
import pytest

from repro.core.expander import GabberGalilExpander


@pytest.fixture
def small_graph():
    """A Gabber-Galil graph small enough for exhaustive checks."""
    return GabberGalilExpander(m=7)


@pytest.fixture
def native_graph():
    """The paper's graph: m = 2**32, 64-bit vertex ids."""
    return GabberGalilExpander()


@pytest.fixture
def rng():
    """Deterministic NumPy generator for test-local randomness."""
    return np.random.Generator(np.random.PCG64(12345))


@pytest.fixture
def chaos():
    """Factory for fault-injected bit sources and supervised chains.

    Usage::

        src = chaos("flaky")                       # FaultyBitSource
        feed = chaos("failover", supervised=True)  # + failover chain
        chaos.tear_journal(path)                   # recovery faults
        chaos.kill_server(proc)

    Backoff sleeps are no-ops so chaos tests run at full speed; pass
    ``sleep=...`` to override.  The durability-plane recovery faults
    (:data:`repro.resilience.RECOVERY_FAULTS`) hang off the factory as
    attributes so crash drills come from the same fixture.
    """
    from repro.bitsource.counter import SplitMix64Source, splitmix64
    from repro.resilience import (
        RECOVERY_FAULTS,
        FaultyBitSource,
        RetryPolicy,
        SupervisedFeed,
        kill_server,
        tear_journal,
    )

    def make(
        profile="flaky",
        seed=1,
        fault_seed=0,
        supervised=False,
        fallbacks=None,
        policy=None,
        sleep=lambda s: None,
    ):
        primary = FaultyBitSource(
            SplitMix64Source(seed), profile, fault_seed=fault_seed,
            sleep=sleep,
        )
        if not supervised and fallbacks is None:
            return primary
        if fallbacks is None:
            fallback_seed = int(splitmix64(np.uint64(seed + 1)))
            fallbacks = [SplitMix64Source(fallback_seed)]
        return SupervisedFeed(
            [primary, *fallbacks],
            policy=policy or RetryPolicy(backoff_base_s=0.0),
            jitter_seed=fault_seed,
            sleep=sleep,
        )

    make.tear_journal = tear_journal
    make.kill_server = kill_server
    make.recovery_faults = RECOVERY_FAULTS
    return make
