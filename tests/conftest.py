"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.expander import GabberGalilExpander


@pytest.fixture
def small_graph():
    """A Gabber-Galil graph small enough for exhaustive checks."""
    return GabberGalilExpander(m=7)


@pytest.fixture
def native_graph():
    """The paper's graph: m = 2**32, 64-bit vertex ids."""
    return GabberGalilExpander()


@pytest.fixture
def rng():
    """Deterministic NumPy generator for test-local randomness."""
    return np.random.Generator(np.random.PCG64(12345))
