"""Tests for hybrid work units, throughput model and scheduler."""

import numpy as np
import pytest

from repro.bitsource.counter import SplitMix64Source
from repro.gpusim.calibration import BaselineCosts
from repro.hybrid.scheduler import GenerationPlan, HybridScheduler
from repro.hybrid.throughput import (
    cpu_hybrid_time_ns,
    curand_time_ns,
    glibc_rand_time_ns,
    hybrid_time_ns,
    mt_time_ns,
)
from repro.gpusim.pipeline import PipelineConfig
from repro.hybrid.workunits import DEVICE_MAPPING, WorkItem, WorkUnit
from repro.resilience import (
    FaultProfile,
    FaultyBitSource,
    FeedHealth,
    RetryPolicy,
)


class TestWorkUnits:
    def test_mapping(self):
        assert DEVICE_MAPPING[WorkUnit.FEED] == "CPU"
        assert DEVICE_MAPPING[WorkUnit.GENERATE] == "GPU"
        assert DEVICE_MAPPING[WorkUnit.TRANSFER] == "PCIe"

    def test_work_item(self):
        item = WorkItem(WorkUnit.FEED, iteration=3, numbers=100)
        assert item.device == "CPU"
        assert item.label == "FEED 3"

    def test_work_item_validation(self):
        with pytest.raises(ValueError):
            WorkItem(WorkUnit.FEED, iteration=-1, numbers=1)
        with pytest.raises(ValueError):
            WorkItem(WorkUnit.FEED, iteration=0, numbers=0)


class TestBaselineTimes:
    def test_hybrid_beats_mt_by_about_2x(self):
        """Figure 3's headline: hybrid ~2x faster at large N."""
        n = 100_000_000
        h = hybrid_time_ns(PipelineConfig(total_numbers=n, batch_size=100))
        assert 1.7 < mt_time_ns(n) / h < 2.3
        assert 1.6 < curand_time_ns(n) / h < 2.3

    def test_setup_dominates_small_n(self):
        """Batch MT pays a big setup; crossover behaviour at small N."""
        c = BaselineCosts()
        assert mt_time_ns(1000) > 0.9 * c.mersenne_twister_setup_ns

    def test_cpu_hybrid_beats_serial_rand(self):
        """Figure 6: the multicore CPU variant outruns glibc rand()."""
        n = 50_000_000
        assert cpu_hybrid_time_ns(n) < glibc_rand_time_ns(n)

    def test_times_scale_linearly(self):
        assert mt_time_ns(2 * 10**8) - mt_time_ns(10**8) == pytest.approx(
            10**8 * BaselineCosts().mersenne_twister_ns
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            mt_time_ns(0)
        with pytest.raises(ValueError):
            cpu_hybrid_time_ns(-5)


class TestScheduler:
    def test_plan_uses_model_optimum(self):
        with HybridScheduler(seed=3) as sched:
            plan = sched.plan(10**7)
            assert plan.batch_size == 100

    def test_plan_respects_override(self):
        with HybridScheduler(seed=3) as sched:
            plan = sched.plan(10**6, batch_size=7)
            assert plan.batch_size == 7

    def test_predict_returns_simulation(self):
        with HybridScheduler(seed=3) as sched:
            plan = sched.plan(10**6)
            pred = sched.predict(plan)
            assert pred.total_ns > 0
            assert pred.timeline.busy_time("CPU") > 0

    def test_generate_produces_values(self):
        with HybridScheduler(
            seed=3, bit_source=SplitMix64Source(3), max_threads=1024
        ) as sched:
            plan = sched.plan(5000, batch_size=100)
            vals = sched.generate(plan)
            assert vals.dtype == np.uint64 and vals.size == 5000

    def test_run_end_to_end(self):
        with HybridScheduler(
            seed=3, bit_source=SplitMix64Source(4), max_threads=512
        ) as sched:
            vals, plan, pred = sched.run(2000, batch_size=50)
            assert vals.size == 2000
            assert isinstance(plan, GenerationPlan)
            assert pred.throughput_gnumbers_s > 0

    def test_async_feed_works(self):
        with HybridScheduler(
            seed=5, bit_source=SplitMix64Source(5), async_feed=True,
            max_threads=256,
        ) as sched:
            vals = sched.generate(sched.plan(1000, batch_size=10))
            assert vals.size == 1000

    def test_plan_from_config(self):
        cfg = PipelineConfig(total_numbers=1000, batch_size=10)
        plan = GenerationPlan.from_config(cfg)
        assert plan.num_threads == 100
        assert plan.iterations == 10


class TestSchedulerResilience:
    def test_resilient_mode_is_value_transparent(self):
        # With a healthy primary the supervised chain must not change
        # the stream: resilient and plain schedulers agree bit-for-bit.
        with HybridScheduler(seed=3, max_threads=256) as plain:
            expect, _, _ = plain.run(500, batch_size=50)
        with HybridScheduler(seed=3, max_threads=256,
                             resilient=True) as sched:
            got, _, _ = sched.run(500, batch_size=50)
            assert sched.supervisor is not None
            assert sched.supervisor.health is FeedHealth.OK
        assert np.array_equal(expect, got)

    def test_faulty_primary_fails_over_and_reports(self):
        primary = FaultyBitSource(
            SplitMix64Source(3), FaultProfile(fail_after=0),
            sleep=lambda s: None,
        )
        with HybridScheduler(
            seed=3, bit_source=primary,
            failover=[SplitMix64Source(9)], max_threads=256,
            retry_policy=RetryPolicy(max_retries=1, backoff_base_s=0.0),
        ) as sched:
            vals = sched.generate(sched.plan(500, batch_size=50))
            assert vals.size == 500
            report = sched.report()
        res = report.sections["resilience"]
        assert res["failovers"] == 1
        assert res["health"] == "DEGRADED"
        assert res["active_source"] == "splitmix64"

    def test_failover_arg_implies_resilient(self):
        with HybridScheduler(
            seed=3, failover=[SplitMix64Source(9)], max_threads=256
        ) as sched:
            assert sched.supervisor is not None
            assert [s.name for s in sched.supervisor.chain] == \
                ["glibc-rand", "splitmix64"]

    def test_plain_scheduler_has_no_resilience_section(self):
        with HybridScheduler(seed=3, max_threads=256) as sched:
            sched.run(200, batch_size=50)
            assert "resilience" not in sched.report().sections


class TestSchedulerSeedZero:
    """Regression: seed 0 must reach GlibcRandom untouched.

    The scheduler used to remap ``seed=0`` to 1 itself (``seed or 1``),
    duplicating -- and thereby hiding -- the glibc rule that
    ``srand(0)`` behaves as ``srand(1)``.  That rule belongs to
    :class:`GlibcRandom` alone; a future bit source whose seed-0 stream
    differs from seed 1 must see the 0.
    """

    def test_seed_zero_passed_through_to_feed(self):
        with HybridScheduler(seed=0, max_threads=256) as sched:
            assert sched.feed.source._seed == 0
            vals, _plan, _pred = sched.run(500, batch_size=50)
            assert vals.size == 500

    def test_seed_zero_stream_matches_glibc_semantics(self):
        # glibc defines srand(0) == srand(1); with the default feed the
        # two schedulers must emit bit-identical streams.
        with HybridScheduler(seed=0, max_threads=256) as s0:
            v0, _, _ = s0.run(500, batch_size=50)
        with HybridScheduler(seed=1, max_threads=256) as s1:
            v1, _, _ = s1.run(500, batch_size=50)
        assert np.array_equal(v0, v1)
