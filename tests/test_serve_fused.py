"""The fused serve path: executor regressions and the stream contract.

Covers the three batching-executor bugfixes (shutdown-under-load must
settle popped batches, the BUSY path must not leak futures, the latency
histogram must count failures) and the serve-layer stream contract
under cross-session coalescing + readahead: concurrent sessions served
through the fused planner must byte-compare equal to per-session serial
references, in both wire modes, including a mixed raw+VARIATE resume
drill.
"""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro import obs
from repro.serve import (
    ServeClient,
    ServeConfig,
    serve_background,
)
from repro.serve.batching import LATENCY_BUCKETS, BatchingExecutor
from repro.serve.protocol import ServeError
from repro.serve.session import SessionStream

SEED = 77


class TestBatchingRegressions:
    def test_shutdown_under_load_settles_popped_batch(self):
        """Requests popped off the queue but not yet submitted to the
        pool must still settle at aclose -- previously they hung until
        client timeout."""

        async def main():
            ex = BatchingExecutor(
                max_queue=16, max_batch=64, window_s=30.0, workers=1
            )
            await ex.start()
            s = SessionStream("shutdown", master_seed=SEED)
            futs = [ex.try_submit(s, 16) for _ in range(5)]
            assert all(f is not None for f in futs)
            # Let the dispatcher pop the requests and park inside its
            # (deliberately huge) coalescing window.
            await asyncio.sleep(0.05)
            assert ex.queue_depth == 0, "batch should be popped by now"
            await asyncio.wait_for(ex.aclose(), timeout=10)
            for fut in futs:
                assert fut.done(), "popped request never settled"
                with pytest.raises(ServeError, match="shutting down"):
                    fut.result()

        asyncio.run(main())

    def test_busy_path_creates_no_future(self):
        """QueueFull must reject *before* a future exists; a future
        created first would stay pending on the loop forever."""

        async def main():
            ex = BatchingExecutor(
                max_queue=1, max_batch=4, window_s=30.0, workers=1
            )
            await ex.start()
            s = SessionStream("busy", master_seed=SEED)
            first = ex.try_submit(s, 4)   # popped by the dispatcher
            assert first is not None
            await asyncio.sleep(0.05)
            second = ex.try_submit(s, 4)  # sits in the size-1 queue
            assert second is not None
            created = []
            real = ex._loop.create_future
            ex._loop.create_future = lambda: (created.append(1), real())[1]
            try:
                assert ex.try_submit(s, 4) is None  # BUSY
            finally:
                ex._loop.create_future = real
            assert not created, "BUSY path leaked a future"
            await asyncio.wait_for(ex.aclose(), timeout=10)
            for fut in (first, second):
                assert fut.done()

        asyncio.run(main())

    def test_latency_histogram_counts_failures(self):
        """A failing request must still be observed, or the p99 the
        serve gate reads silently drops the slowest outcomes."""
        with obs.observed() as (registry, _tracer):

            async def main():
                ex = BatchingExecutor(
                    max_queue=8, max_batch=4, window_s=0.0, workers=1
                )
                await ex.start()
                s = SessionStream("latfail", master_seed=SEED)
                ok = ex.try_submit(s, 8)
                bad = ex.try_submit(s, 8, dist="no-such-dist")
                assert (await asyncio.wait_for(ok, 10)).size == 8
                with pytest.raises(ValueError):
                    await asyncio.wait_for(bad, 10)
                await ex.aclose()

            asyncio.run(main())
            hist = registry.histogram(
                "repro_serve_request_latency_seconds", LATENCY_BUCKETS
            )
            assert hist.count == 2, "failure missing from the histogram"
            assert registry.counter(
                "repro_serve_requests_error_total"
            ).value == 1
            assert registry.counter(
                "repro_serve_requests_ok_total"
            ).value == 1


def _fetch_concurrently(config, n_clients, sizes, prefix="fused"):
    """``n_clients`` sessions fetching ``sizes`` concurrently."""
    results, errors = {}, []

    def worker(i):
        try:
            with ServeClient(
                h.host, h.port, session=f"{prefix}-{i}"
            ) as c:
                results[i] = np.concatenate([c.fetch(n) for n in sizes])
        except Exception as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    with serve_background(config) as h:
        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
    assert not errors, errors
    assert len(results) == n_clients
    return results


class TestFusedStreamContract:
    def test_concurrent_sessions_match_serial_reference(self):
        """N sessions under coalescing + readahead, byte-compared
        against the per-session serial reference."""
        sizes = (3, 257, 64, 1000)
        config = ServeConfig(master_seed=SEED, batch_window_s=0.01)
        results = _fetch_concurrently(config, 8, sizes)
        for i, got in results.items():
            ref = SessionStream(
                f"fused-{i}", master_seed=SEED
            ).generate(sum(sizes))
            np.testing.assert_array_equal(got, ref)

    def test_readahead_on_off_byte_identical(self):
        """The same session history served with readahead enabled and
        disabled must produce identical bytes -- the buffer is an
        optimization, never part of the stream."""

        def serve_once(readahead):
            config = ServeConfig(
                master_seed=SEED, readahead_max=readahead
            )
            with serve_background(config) as h:
                with ServeClient(h.host, h.port, session="ra") as c:
                    raw = [c.fetch(n) for n in (7, 200, 33)]
                    var = c.fetch_variates("normal", 40)
                    raw.append(c.fetch(64))
            return np.concatenate(raw), var

        raw_on, var_on = serve_once(4096)
        raw_off, var_off = serve_once(0)
        np.testing.assert_array_equal(raw_on, raw_off)
        np.testing.assert_array_equal(
            var_on.view(np.uint64), var_off.view(np.uint64)
        )

    def test_json_wire_mode_through_fused_path(self):
        """The JSON-lines debug mode rides the same fused executor."""
        config = ServeConfig(master_seed=SEED, batch_window_s=0.005)
        with serve_background(config) as h:
            sock = socket.create_connection((h.host, h.port), timeout=10)
            f = sock.makefile("rwb")
            try:
                def ask(doc):
                    f.write((json.dumps(doc) + "\n").encode())
                    f.flush()
                    return json.loads(f.readline())

                assert ask({"op": "hello", "session": "jsonf"})["ok"]
                got = []
                for n in (5, 90, 33):
                    reply = ask({"op": "fetch", "n": n})
                    assert reply["ok"]
                    got.extend(reply["values"])
            finally:
                sock.close()
        ref = SessionStream("jsonf", master_seed=SEED).generate(128)
        assert got == [int(v) for v in ref]

    def test_mixed_raw_variate_resume_drill(self):
        """Disconnect mid-history, RESUME at the delivered word offset,
        continue with both raw and typed ops through the fused planner:
        the whole thing must equal an uninterrupted serial run."""
        config = ServeConfig(master_seed=SEED, batch_window_s=0.005)
        with serve_background(config) as h:
            c = ServeClient(h.host, h.port, session="drill")
            head_raw = c.fetch(50)
            head_var = c.fetch_variates("normal", 25)
            mark = c.words_received
            c.close()
            c2 = ServeClient(h.host, h.port, session="drill")
            ack = c2.resume(offset=mark)
            assert ack.get("offset") == mark
            tail_var = c2.fetch_variates("normal", 15)
            tail_raw = c2.fetch(30)
            c2.close()
        ref = SessionStream("drill", master_seed=SEED)
        np.testing.assert_array_equal(head_raw, ref.generate(50))
        ref_hv, words = ref.variates("normal", 25, {})
        np.testing.assert_array_equal(
            head_var.view(np.uint64), ref_hv.view(np.uint64)
        )
        assert words == mark
        ref_tv, _ = ref.variates("normal", 15, {})
        np.testing.assert_array_equal(
            tail_var.view(np.uint64), ref_tv.view(np.uint64)
        )
        np.testing.assert_array_equal(tail_raw, ref.generate(30))

    def test_engine_backed_fused_sessions(self):
        """Engine-backed sessions under the fused planner: concurrent
        streams come out of fetch_spans byte-identical to in-process."""
        sizes = (40, 500, 17)
        config = ServeConfig(
            master_seed=SEED,
            engine_shards=2,
            batch_window_s=0.01,
        )
        results = _fetch_concurrently(config, 4, sizes, prefix="efused")
        for i, got in results.items():
            ref = SessionStream(
                f"efused-{i}", master_seed=SEED
            ).generate(sum(sizes))
            np.testing.assert_array_equal(got, ref)
