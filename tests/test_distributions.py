"""Tests for the derived-distribution layer."""

import numpy as np
import pytest
import scipy.stats as sps

from repro.baselines.mt19937 import MT19937
from repro.core.distributions import (
    binomial,
    choice_index,
    exponential,
    geometric,
    normal,
    poisson,
    shuffle,
)


def gen():
    return MT19937(31415)


class TestNormal:
    def test_moments(self):
        x = normal(gen(), 200_000)
        assert abs(x.mean()) < 0.01
        assert abs(x.std() - 1.0) < 0.01

    def test_location_scale(self):
        x = normal(gen(), 100_000, mean=5.0, std=2.0)
        assert x.mean() == pytest.approx(5.0, abs=0.03)
        assert x.std() == pytest.approx(2.0, abs=0.03)

    def test_normality_ks(self):
        x = normal(gen(), 50_000)
        assert sps.kstest(x, "norm").pvalue > 0.01

    def test_odd_count(self):
        assert normal(gen(), 7).size == 7

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            normal(gen(), 10, std=-1)


class TestExponential:
    def test_mean(self):
        x = exponential(gen(), 200_000, rate=2.0)
        assert x.mean() == pytest.approx(0.5, abs=0.01)

    def test_distribution_ks(self):
        x = exponential(gen(), 50_000, rate=1.0)
        assert sps.kstest(x, "expon").pvalue > 0.01

    def test_all_positive(self):
        assert (exponential(gen(), 10_000) > 0).all()

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            exponential(gen(), 10, rate=0)


class TestGeometric:
    def test_mean(self):
        x = geometric(gen(), 200_000, p=0.25)
        assert x.mean() == pytest.approx(4.0, abs=0.05)

    def test_support(self):
        x = geometric(gen(), 10_000, p=0.5)
        assert x.min() >= 1

    def test_p_one(self):
        assert (geometric(gen(), 100, p=1.0) == 1).all()

    def test_p_zero_rejected(self):
        with pytest.raises(ValueError):
            geometric(gen(), 10, p=0.0)


class TestPoisson:
    @pytest.mark.parametrize("lam", [0.5, 3.0, 12.0])
    def test_small_lambda_exact_method(self, lam):
        x = poisson(gen(), 150_000, lam)
        assert x.mean() == pytest.approx(lam, rel=0.02)
        assert x.var() == pytest.approx(lam, rel=0.05)

    def test_large_lambda_approximation(self):
        x = poisson(gen(), 100_000, 100.0)
        assert x.mean() == pytest.approx(100.0, rel=0.01)
        assert (x >= 0).all()

    def test_pmf_chi2(self):
        lam = 2.0
        x = poisson(gen(), 100_000, lam)
        kmax = 9
        observed = np.bincount(np.minimum(x, kmax), minlength=kmax + 1)
        probs = sps.poisson.pmf(np.arange(kmax + 1), lam)
        probs[-1] = 1 - probs[:-1].sum()
        stat = ((observed - probs * x.size) ** 2 / (probs * x.size)).sum()
        assert sps.chi2.sf(stat, kmax) > 0.001


class TestBinomial:
    def test_moments(self):
        x = binomial(gen(), 50_000, trials=20, p=0.3)
        assert x.mean() == pytest.approx(6.0, abs=0.05)
        assert x.var() == pytest.approx(20 * 0.3 * 0.7, rel=0.05)

    def test_bounds(self):
        x = binomial(gen(), 10_000, trials=10, p=0.5)
        assert x.min() >= 0 and x.max() <= 10


class TestShuffle:
    def test_is_permutation(self):
        items = np.arange(100)
        out = shuffle(gen(), items)
        assert sorted(out) == list(range(100))
        assert not np.array_equal(out, items)  # astronomically unlikely

    def test_input_not_mutated(self):
        items = np.arange(50)
        shuffle(gen(), items)
        assert np.array_equal(items, np.arange(50))

    def test_uniformity_small(self):
        """All 6 permutations of 3 items appear with equal frequency."""
        counts = {}
        g = gen()
        for _ in range(12_000):
            key = tuple(shuffle(g, np.arange(3)))
            counts[key] = counts.get(key, 0) + 1
        assert len(counts) == 6
        expected = 12_000 / 6
        stat = sum((c - expected) ** 2 / expected for c in counts.values())
        assert sps.chi2.sf(stat, 5) > 0.001

    def test_trivial_sizes(self):
        assert shuffle(gen(), np.array([7])).tolist() == [7]
        assert shuffle(gen(), np.array([])).size == 0


class TestChoice:
    def test_respects_weights(self):
        idx = choice_index(gen(), 100_000, np.array([1.0, 3.0]))
        frac = (idx == 1).mean()
        assert frac == pytest.approx(0.75, abs=0.01)

    def test_zero_weight_never_chosen(self):
        idx = choice_index(gen(), 10_000, np.array([1.0, 0.0, 1.0]))
        assert not (idx == 1).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            choice_index(gen(), 10, np.array([]))
        with pytest.raises(ValueError):
            choice_index(gen(), 10, np.array([-1.0, 2.0]))


class TestFetchSplitInvariance:
    """PR 9 regressions: the legacy wrappers route through repro.dist,
    so their output is a pure function of the word stream -- split
    requests must concatenate into the bulk request, bitwise."""

    def test_normal_split_equals_bulk(self):
        bulk = normal(gen(), 8)
        g = gen()
        split = np.concatenate([normal(g, 3), normal(g, 5)])
        np.testing.assert_array_equal(
            split.view(np.uint64), bulk.view(np.uint64)
        )

    def test_normal_odd_chains(self):
        bulk = normal(gen(), 21)
        g = gen()
        split = np.concatenate([normal(g, n) for n in (1, 1, 7, 3, 9)])
        np.testing.assert_array_equal(
            split.view(np.uint64), bulk.view(np.uint64)
        )

    def test_exponential_split_equals_bulk(self):
        bulk = exponential(gen(), 10, rate=2.0)
        g = gen()
        split = np.concatenate(
            [exponential(g, 4, rate=2.0), exponential(g, 6, rate=2.0)]
        )
        np.testing.assert_array_equal(
            split.view(np.uint64), bulk.view(np.uint64)
        )


class TestShuffleUnbiased:
    def test_deterministic_per_generator_seed(self):
        a = shuffle(gen(), np.arange(64))
        b = shuffle(gen(), np.arange(64))
        assert np.array_equal(a, b)

    def test_four_item_uniformity(self):
        """All 24 permutations of 4 items, chi-square: the old
        float-product index (int(u * (i + 1))) was biased; the Lemire
        path must not be."""
        counts = {}
        g = gen()
        for _ in range(24_000):
            key = tuple(shuffle(g, np.arange(4)))
            counts[key] = counts.get(key, 0) + 1
        assert len(counts) == 24
        expected = 24_000 / 24
        stat = sum((c - expected) ** 2 / expected for c in counts.values())
        assert sps.chi2.sf(stat, 23) > 0.001
