"""Tests for the HybridPRNG adapter (buffering, determinism, interface)."""

import numpy as np
import pytest

from repro.baselines.hybrid_adapter import HybridPRNG
from repro.bitsource import SplitMix64Source


def make(seed=5, threads=256):
    return HybridPRNG(
        seed=seed, num_threads=threads, bit_source=SplitMix64Source(seed)
    )


class TestBuffering:
    def test_small_requests_concatenate_to_stream(self):
        a = make()
        b = make()
        whole = a.u64_array(1000)
        parts = np.concatenate([b.u64_array(k) for k in (1, 7, 99, 400, 493)])
        assert np.array_equal(whole, parts)

    def test_buffer_survives_u32_mixing(self):
        a = make()
        b = make()
        w = a.u64_array(10)
        # 20 u32 values == the same 10 u64 words split in halves.
        halves = b.u32_array(20).astype(np.uint64)
        rebuilt = (halves[0::2] << np.uint64(32)) | halves[1::2]
        assert np.array_equal(w, rebuilt)

    def test_small_request_does_not_burn_a_round_each(self):
        gen = make(threads=256)
        gen.u64_array(1)
        produced_after_first = gen.generator.numbers_generated
        for _ in range(100):
            gen.u64_array(1)
        # 101 numbers served from a single 256-lane round.
        assert gen.generator.numbers_generated == produced_after_first

    def test_reseed_clears_buffer(self):
        gen = make()
        first = gen.u64_array(50).copy()
        gen.u64_array(999)
        gen.reseed(5)
        assert np.array_equal(gen.u64_array(50), first)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make().u64_array(-1)
        with pytest.raises(ValueError):
            make().u32_array(-1)


class TestSemantics:
    def test_name_and_on_demand(self):
        gen = make()
        assert gen.name == "Hybrid PRNG"
        assert gen.on_demand is True

    def test_default_feed_is_glibc(self):
        gen = HybridPRNG(seed=1, num_threads=64)
        assert gen.generator.source.name == "glibc-rand"

    def test_walk_length_parameter(self):
        gen = HybridPRNG(seed=1, num_threads=64, walk_length=16)
        assert gen.generator.walk_length == 16

    def test_uniform_interface(self):
        u = make().uniform(5000)
        assert (u >= 0).all() and (u < 1).all()
        assert abs(u.mean() - 0.5) < 0.03
