"""Client-side behaviour: blocking and asyncio clients, retry logic."""

import asyncio

import numpy as np
import pytest

from repro.serve import (
    AsyncServeClient,
    ServeClient,
    ServeConfig,
    ServerBusyError,
    serve_background,
)
from repro.serve.protocol import ProtocolError, ServeError
from repro.serve.session import SessionStream, session_index


class TestBlockingClient:
    def test_hello_reports_stream_identity(self):
        with serve_background(ServeConfig(master_seed=1)) as h:
            with ServeClient(h.host, h.port, session="idme") as c:
                assert c.stream_index == session_index("idme")
                assert c.hello_info["lanes"] == 64

    def test_anonymous_sessions_are_distinct(self):
        with serve_background(ServeConfig(master_seed=1)) as h:
            with ServeClient(h.host, h.port) as a, \
                 ServeClient(h.host, h.port) as b:
                assert a.session != b.session
                assert a.session.startswith("anon-")
                va = set(map(int, a.fetch(128)))
                vb = set(map(int, b.fetch(128)))
        assert not va & vb

    def test_random_is_unit_interval(self):
        with serve_background(ServeConfig(master_seed=1)) as h:
            with ServeClient(h.host, h.port, session="u") as c:
                u = c.random(512)
        assert u.dtype == np.float64
        assert float(u.min()) >= 0.0
        assert float(u.max()) < 1.0

    def test_invalid_fetch_rejected_client_side(self):
        with serve_background(ServeConfig()) as h:
            with ServeClient(h.host, h.port, session="bad") as c:
                with pytest.raises(ProtocolError):
                    c.fetch(0)
                with pytest.raises(ProtocolError):
                    c.fetch(-3)
                # Connection still fine afterwards.
                assert c.fetch(4).size == 4

    def test_server_side_error_raises_serve_error(self):
        with serve_background(ServeConfig(max_fetch=100)) as h:
            with ServeClient(h.host, h.port, session="cap") as c:
                with pytest.raises(ServeError, match="fetch count"):
                    c.fetch(101)

    def test_busy_without_retries_raises(self):
        config = ServeConfig(rate=10.0, burst=16)
        with serve_background(config) as h:
            with ServeClient(h.host, h.port, session="nb") as c:
                c.fetch(16)
                with pytest.raises(ServerBusyError):
                    c.fetch(16)


class TestAsyncClient:
    def test_async_fetch_matches_reference(self):
        async def go(host, port):
            client = await AsyncServeClient.connect(host, port, session="aio")
            try:
                return await client.fetch(200)
            finally:
                await client.close()

        with serve_background(ServeConfig(master_seed=31)) as h:
            values = asyncio.run(go(h.host, h.port))
        reference = SessionStream("aio", master_seed=31).generate(200)
        np.testing.assert_array_equal(values, reference)

    def test_async_concurrent_clients_disjoint(self):
        async def go(host, port):
            clients = await asyncio.gather(*[
                AsyncServeClient.connect(host, port, session=f"aio-{i}")
                for i in range(4)
            ])
            try:
                return await asyncio.gather(*[
                    c.fetch(128) for c in clients
                ])
            finally:
                await asyncio.gather(*[c.close() for c in clients])

        with serve_background(ServeConfig(master_seed=31)) as h:
            results = asyncio.run(go(h.host, h.port))
        seen = set()
        for values in results:
            chunk = set(map(int, values))
            assert len(chunk) == 128
            assert not seen & chunk
            seen |= chunk

    def test_async_status_and_identity(self):
        async def go(host, port):
            client = await AsyncServeClient.connect(host, port, session="st")
            try:
                status = await client.status()
                return client.stream_index, status
            finally:
                await client.close()

        with serve_background(ServeConfig(master_seed=1)) as h:
            index, status = asyncio.run(go(h.host, h.port))
        assert index == session_index("st")
        assert status["session"]["session"] == "st"
        assert status["server"]["health"] == "OK"

    def test_async_busy_retry_budget(self):
        async def go(host, port):
            client = await AsyncServeClient.connect(
                host, port, session="ar", retries=8, backoff_s=0.05
            )
            try:
                first = await client.fetch(64)
                second = await client.fetch(32)  # needs refill + retries
                return first, second
            finally:
                await client.close()

        config = ServeConfig(rate=2000.0, burst=64)
        with serve_background(config) as h:
            first, second = asyncio.run(go(h.host, h.port))
        assert first.size == 64
        assert second.size == 32
