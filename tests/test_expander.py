"""Tests for the Gabber-Galil expander construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expander import (
    DEGREE,
    EDGE_EXPANSION_LOWER_BOUND,
    GabberGalilExpander,
)

coords32 = st.integers(min_value=0, max_value=2**32 - 1)
ks = st.integers(min_value=0, max_value=6)
small_ms = st.integers(min_value=2, max_value=64)


class TestConstruction:
    def test_defaults(self):
        g = GabberGalilExpander()
        assert g.m == 2**32
        assert g.degree == DEGREE == 7
        assert g.bits_per_vertex == 64

    def test_num_vertices(self):
        assert GabberGalilExpander(m=5).num_vertices == 25

    @pytest.mark.parametrize("bad", [0, 1, -3, 2**33])
    def test_rejects_bad_m(self, bad):
        with pytest.raises(ValueError):
            GabberGalilExpander(m=bad)

    def test_equality_and_hash(self):
        assert GabberGalilExpander(m=5) == GabberGalilExpander(m=5)
        assert GabberGalilExpander(m=5) != GabberGalilExpander(m=7)
        assert hash(GabberGalilExpander(m=5)) == hash(GabberGalilExpander(m=5))

    def test_expansion_constant_value(self):
        assert EDGE_EXPANSION_LOWER_BOUND == pytest.approx((2 - 3**0.5) / 2)


class TestNeighborMaps:
    def test_paper_definition_small(self):
        """Spot-check all 7 maps against the paper's formulas, m = 10."""
        g = GabberGalilExpander(m=10)
        x, y = 3, 4
        expect = [
            (3, 4),          # (x, y)
            (3, (2 * 3 + 4) % 10),       # (x, 2x+y)
            (3, (2 * 3 + 4 + 1) % 10),   # (x, 2x+y+1)
            (3, (2 * 3 + 4 + 2) % 10),   # (x, 2x+y+2)
            ((3 + 2 * 4) % 10, 4),       # (x+2y, y)
            ((3 + 2 * 4 + 1) % 10, 4),   # (x+2y+1, y)
            ((3 + 2 * 4 + 2) % 10, 4),   # (x+2y+2, y)
        ]
        assert g.neighbors(x, y) == expect

    def test_degree_is_seven(self, small_graph):
        assert len(small_graph.neighbors(2, 3)) == 7

    def test_k_out_of_range(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.neighbor(0, 0, 7)
        with pytest.raises(ValueError):
            small_graph.neighbor_arrays(
                np.array([0]), np.array([0]), np.array([-1])
            )

    @given(coords32, coords32, ks)
    @settings(max_examples=60)
    def test_native_matches_explicit_mod(self, x, y, k):
        """uint32 wraparound path equals explicit mod-2**32 arithmetic."""
        g = GabberGalilExpander()
        nx, ny = g.neighbor(x, y, k)
        m = 2**32
        if k == 0:
            ex, ey = x, y
        elif k <= 3:
            ex, ey = x, (2 * x + y + (k - 1)) % m
        else:
            ex, ey = (x + 2 * y + (k - 4)) % m, y
        assert (nx, ny) == (ex, ey)

    @given(small_ms, ks)
    @settings(max_examples=40)
    def test_each_map_is_bijection(self, m, k):
        """Every neighbour map permutes the whole vertex set Z_m x Z_m."""
        g = GabberGalilExpander(m=m)
        xs, ys = np.divmod(np.arange(m * m, dtype=np.int64), m)
        nx, ny = g.neighbor_arrays(xs, ys, np.full(m * m, k))
        ids = nx.astype(np.int64) * m + ny.astype(np.int64)
        assert np.unique(ids).size == m * m

    @given(small_ms, ks, st.data())
    @settings(max_examples=40)
    def test_inverse_neighbor(self, m, k, data):
        g = GabberGalilExpander(m=m)
        x = data.draw(st.integers(min_value=0, max_value=m - 1))
        y = data.draw(st.integers(min_value=0, max_value=m - 1))
        nx, ny = g.neighbor(x, y, k)
        px, py = g.inverse_neighbor_arrays(
            np.array([nx], dtype=np.uint64), np.array([ny], dtype=np.uint64),
            np.array([k]),
        )
        assert (int(px[0]), int(py[0])) == (x, y)

    @given(coords32, coords32, ks)
    @settings(max_examples=60)
    def test_inverse_neighbor_native(self, x, y, k):
        g = GabberGalilExpander()
        nx, ny = g.neighbor(x, y, k)
        px, py = g.inverse_neighbor_arrays(
            np.array([nx], dtype=np.uint32), np.array([ny], dtype=np.uint32),
            np.array([k]),
        )
        assert (int(px[0]), int(py[0])) == (x, y)


class TestPacking:
    @given(coords32, coords32)
    def test_pack_unpack_roundtrip_native(self, x, y):
        g = GabberGalilExpander()
        vid = g.pack(np.uint64(x), np.uint64(y))
        ux, uy = g.unpack(vid)
        assert (int(ux), int(uy)) == (x, y)

    @given(small_ms, st.data())
    @settings(max_examples=30)
    def test_pack_unpack_roundtrip_general(self, m, data):
        g = GabberGalilExpander(m=m)
        x = data.draw(st.integers(min_value=0, max_value=m - 1))
        y = data.draw(st.integers(min_value=0, max_value=m - 1))
        vid = g.pack(np.uint64(x), np.uint64(y))
        ux, uy = g.unpack(vid)
        assert (int(ux), int(uy)) == (x, y)

    def test_pack_is_injective_small(self, small_graph):
        m = small_graph.m
        xs, ys = np.divmod(np.arange(m * m, dtype=np.int64), m)
        ids = small_graph.pack(xs.astype(np.uint64), ys.astype(np.uint64))
        assert np.unique(ids).size == m * m


class TestComposedAffine:
    @given(
        small_ms,
        st.lists(ks, min_size=0, max_size=20),
        st.data(),
    )
    @settings(max_examples=40)
    def test_composition_matches_stepwise(self, m, walk, data):
        g = GabberGalilExpander(m=m)
        x = data.draw(st.integers(min_value=0, max_value=m - 1))
        y = data.draw(st.integers(min_value=0, max_value=m - 1))
        cx, cy = x, y
        for k in walk:
            cx, cy = g.neighbor(cx, cy, k)
        A, b = g.composed_affine(walk)
        ax, ay = g.apply_affine(A, b, x, y)
        assert (ax, ay) == (cx, cy)

    def test_identity_walk(self):
        g = GabberGalilExpander(m=11)
        A, b = g.composed_affine([0, 0, 0])
        assert A.tolist() == [[1, 0], [0, 1]]
        assert b.tolist() == [0, 0]

    def test_determinant_is_one(self):
        """All maps are unimodular, so any composition has det == 1 mod m."""
        g = GabberGalilExpander(m=101)
        A, _ = g.composed_affine([1, 4, 2, 6, 3, 5])
        det = (A[0, 0] * A[1, 1] - A[0, 1] * A[1, 0]) % 101
        assert det == 1
