"""Cross-module integration tests: the full stack working together."""

import numpy as np
import pytest

from repro.apps.listranking import (
    OnDemandBits,
    random_list,
    rank_list_hybrid,
    serial_ranks,
)
from repro.apps.photon import MCPhotonMigration, three_layer_skin
from repro.baselines.hybrid_adapter import HybridPRNG
from repro.bitsource import BufferedFeed, GlibcRandom, SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG
from repro.gpusim.pipeline import PipelineConfig, simulate_pipeline
from repro.hybrid.scheduler import HybridScheduler
from repro.hybrid.throughput import hybrid_time_ns
from repro.quality.crush import run_smallcrush
from repro.quality.diehard import birthday_spacings


class TestFullPipeline:
    def test_paper_configuration_end_to_end(self):
        """glibc feed -> buffered queue -> walkers -> quality probe."""
        feed = BufferedFeed(GlibcRandom(1), batch_words=1 << 12)
        prng = ParallelExpanderPRNG(num_threads=2048, bit_source=feed)
        gen = HybridPRNG(seed=1, num_threads=2048)  # same structure
        res = birthday_spacings(gen, n_samples=80)
        assert res.passed
        vals = prng.generate(10_000)
        assert np.unique(vals).size == 10_000
        assert feed.stats.snapshot()["words_consumed"] > 0

    def test_scheduler_prediction_matches_closed_form(self):
        with HybridScheduler(seed=2, bit_source=SplitMix64Source(2),
                             max_threads=512) as sched:
            plan = sched.plan(10**6)
            pred = sched.predict(plan)
            cfg = PipelineConfig(total_numbers=10**6,
                                 batch_size=plan.batch_size)
            assert pred.total_ns == pytest.approx(hybrid_time_ns(cfg))

    def test_simulated_and_functional_workloads_agree_on_structure(self):
        """The DES pipeline iteration count equals the plan's."""
        cfg = PipelineConfig(total_numbers=50_000, batch_size=50)
        res = simulate_pipeline(cfg)
        gens = [iv for iv in res.timeline.intervals
                if iv.device == "GPU" and iv.label.startswith("GENERATE")]
        assert len(gens) == cfg.iterations


class TestApplicationsShareTheGenerator:
    def test_one_prng_drives_both_applications(self):
        """A single hybrid PRNG instance serves list ranking then MC."""
        prng = ParallelExpanderPRNG(num_threads=2048,
                                    bit_source=SplitMix64Source(9))
        lst = random_list(5000, np.random.Generator(np.random.PCG64(1)))
        res = rank_list_hybrid(lst, OnDemandBits(prng))
        assert np.array_equal(res.ranks, serial_ranks(lst))

        gen = HybridPRNG(seed=9, num_threads=2048)
        sim = MCPhotonMigration(three_layer_skin(), gen, batch_size=3000)
        out = sim.run(3000)
        assert out.tally.energy_balance_error() < 1e-9

    def test_smallcrush_on_the_paper_generator(self):
        gen = HybridPRNG(seed=4, num_threads=1 << 13)
        res = run_smallcrush(gen, scale=0.25)
        assert res.num_passed >= 13
