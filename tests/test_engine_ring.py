"""Unit tests for the shared-memory SPSC ring (single process)."""

import numpy as np
import pytest

from repro.engine.ring import SharedRing


@pytest.fixture
def ring():
    r = SharedRing(slots=2, record_size=4)
    try:
        yield r
    finally:
        r.close()


class TestRoundTrip:
    def test_write_then_read(self, ring):
        w = ring.handle().attach()
        try:
            slot = w.try_reserve()
            slot[:] = np.arange(4, dtype=np.uint64)
            w.commit()
            view = ring.peek(timeout=1.0)
            np.testing.assert_array_equal(
                view, np.arange(4, dtype=np.uint64)
            )
            ring.consume()
        finally:
            w.close()

    def test_fifo_order(self, ring):
        w = ring.handle().attach()
        try:
            for fill in (1, 2):
                slot = w.try_reserve()
                slot[:] = fill
                w.commit()
            for expect in (1, 2):
                assert ring.peek(timeout=1.0)[0] == np.uint64(expect)
                ring.consume()
        finally:
            w.close()

    def test_peek_is_idempotent_until_consume(self, ring):
        w = ring.handle().attach()
        try:
            w.try_reserve()[:] = 7
            w.commit()
            first = ring.peek(timeout=1.0)
            again = ring.peek(timeout=0)
            np.testing.assert_array_equal(first, again)
            ring.consume()
        finally:
            w.close()

    def test_zero_copy_views_share_the_segment(self, ring):
        """peek() views the shared segment itself; a commit into the
        same slot after consume is visible without re-reading."""
        w = ring.handle().attach()
        try:
            w.try_reserve()[:] = 1
            w.commit()
            view = ring.peek(timeout=1.0)
            assert view.base is not None  # a view, not a copy
            ring.consume()
        finally:
            w.close()


class TestBurstGeometry:
    """rounds_per_slot packs whole bursts behind one semaphore pair."""

    def test_slot_is_one_whole_burst(self):
        r = SharedRing(slots=2, record_size=4, rounds_per_slot=3)
        try:
            w = r.handle().attach()
            try:
                assert w.rounds_per_slot == 3
                slot = w.try_reserve()
                assert slot.shape == (12,)  # 3 rounds x 4 words
                slot[:] = np.arange(12, dtype=np.uint64)
                w.commit()
                view = r.peek(timeout=1.0)
                np.testing.assert_array_equal(
                    view, np.arange(12, dtype=np.uint64)
                )
                # One commit, one consume for the whole burst: the
                # reader slices rounds out of the view itself.
                r.consume()
                assert r.peek(timeout=0.05) is None
            finally:
                w.close()
        finally:
            r.close()

    def test_burst_amortizes_semaphores(self):
        """N rounds in one burst cost ONE free/filled cycle, so a
        2-slot ring holds 2 bursts = 2N rounds before backpressure."""
        r = SharedRing(slots=2, record_size=2, rounds_per_slot=4)
        try:
            w = r.handle().attach()
            try:
                for fill in (1, 2):  # two bursts of four rounds
                    w.try_reserve()[:] = fill
                    w.commit()
                assert w.try_reserve() is None  # full after 2 commits
                assert r.peek(timeout=1.0)[0] == np.uint64(1)
            finally:
                w.close()
        finally:
            r.close()

    def test_legacy_handle_defaults_to_one_round(self):
        """A pre-burst RingHandle (no rounds_per_slot attr) attaches as
        rounds_per_slot=1 -- the writer must not assume the field."""
        from repro.engine.ring import RingHandle

        r = SharedRing(slots=2, record_size=4)
        try:
            h = r.handle()
            del h.rounds_per_slot
            w = h.attach()
            try:
                assert w.rounds_per_slot == 1
                assert w.try_reserve().shape == (4,)
            finally:
                w.close()
        finally:
            r.close()


class TestBackpressure:
    def test_writer_stalls_when_full(self, ring):
        w = ring.handle().attach()
        try:
            for _ in range(2):  # fill both slots
                w.try_reserve()[:] = 0
                w.commit()
            assert w.try_reserve() is None
            assert w.try_reserve(timeout=0.05) is None
            ring.peek(timeout=1.0)
            ring.consume()  # free one slot
            assert w.try_reserve(timeout=1.0) is not None
            w.commit()
        finally:
            w.close()

    def test_reader_times_out_when_empty(self, ring):
        assert ring.peek(timeout=0.05) is None


class TestMisuse:
    def test_double_reserve_rejected(self, ring):
        w = ring.handle().attach()
        try:
            w.try_reserve()
            with pytest.raises(RuntimeError, match="never committed"):
                w.try_reserve()
        finally:
            w.close()

    def test_commit_without_reserve_rejected(self, ring):
        w = ring.handle().attach()
        try:
            with pytest.raises(RuntimeError, match="no reservation"):
                w.commit()
        finally:
            w.close()

    def test_consume_without_peek_rejected(self, ring):
        with pytest.raises(RuntimeError, match="without a successful peek"):
            ring.consume()

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError):
            SharedRing(slots=2, record_size=4, rounds_per_slot=0)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SharedRing(slots=0, record_size=4)
        with pytest.raises(ValueError):
            SharedRing(slots=2, record_size=0)

    def test_close_is_idempotent(self):
        r = SharedRing(slots=1, record_size=1)
        r.close()
        r.close()
