"""Tests for span tracing and the JSONL exporter."""

import io
import json
import threading

from repro import obs
from repro.obs.export import export_jsonl
from repro.obs.trace import NullTracer, Tracer


class TestSpans:
    def test_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("feed", words=128):
            pass
        (rec,) = tracer.spans
        assert rec.name == "feed"
        assert rec.attrs == {"words": 128}
        assert rec.end_ns >= rec.start_ns
        assert rec.duration_s == rec.duration_ns / 1e9

    def test_nesting_links_parent(self):
        tracer = Tracer()
        with tracer.span("generate"):
            with tracer.span("transfer"):
                with tracer.span("feed"):
                    pass
        by_name = {rec.name: rec for rec in tracer.spans}
        assert by_name["generate"].parent_id is None
        assert by_name["transfer"].parent_id == by_name["generate"].span_id
        assert by_name["feed"].parent_id == by_name["transfer"].span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("generate"):
            with tracer.span("transfer"):
                pass
            with tracer.span("transfer"):
                pass
        gen = next(r for r in tracer.spans if r.name == "generate")
        kids = [r for r in tracer.spans if r.name == "transfer"]
        assert all(k.parent_id == gen.span_id for k in kids)

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("feed"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert len(tracer.spans) == 1

    def test_threads_have_independent_stacks(self):
        tracer = Tracer()

        def worker():
            with tracer.span("feed"):
                pass

        with tracer.span("generate"):
            t = threading.Thread(target=worker, name="producer")
            t.start()
            t.join()
        feed = next(r for r in tracer.spans if r.name == "feed")
        # The worker's span must not adopt the main thread's open span.
        assert feed.parent_id is None
        assert feed.thread == "producer"

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("feed"):
            pass
        tracer.clear()
        assert tracer.spans == []


class TestStageTotals:
    def test_self_time_excludes_children(self):
        tracer = Tracer()
        with tracer.span("generate"):
            with tracer.span("transfer"):
                with tracer.span("feed"):
                    pass
        totals = tracer.stage_totals()
        gen, tra, fee = (
            totals["generate"], totals["transfer"], totals["feed"]
        )
        assert gen.count == tra.count == fee.count == 1
        # Each parent's total covers its child entirely.
        assert gen.total_ns >= tra.total_ns >= fee.total_ns
        # Self time = total minus direct children.
        assert gen.self_ns == gen.total_ns - tra.total_ns
        assert tra.self_ns == tra.total_ns - fee.total_ns
        assert fee.self_ns == fee.total_ns

    def test_totals_sum_over_repeats(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("feed"):
                pass
        agg = tracer.stage_totals()["feed"]
        assert agg.count == 5
        assert agg.total_ns == sum(r.duration_ns for r in tracer.spans)


class TestNullTracer:
    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        cm1 = tracer.span("feed")
        cm2 = tracer.span("generate", words=1)
        assert cm1 is cm2
        with cm1:
            pass
        assert tracer.spans == []
        assert not tracer.enabled

    def test_default_tracer_is_noop(self):
        assert not obs.tracing_enabled()
        with obs.span("feed"):
            pass
        assert obs.get_tracer().spans == []

    def test_enable_tracing_restores(self):
        tracer = obs.enable_tracing()
        try:
            with obs.span("feed"):
                pass
            assert len(tracer.spans) == 1
        finally:
            obs.disable_tracing()
        assert not obs.tracing_enabled()


class TestExportJsonl:
    def _run_block(self):
        with obs.observed() as (registry, tracer):
            registry.counter("repro_test_total").inc(2)
            registry.histogram("repro_test_seconds", buckets=(1.0,)).observe(0.5)
            with obs.span("generate"):
                with obs.span("feed", words=64):
                    pass
        return registry, tracer

    def test_stream_round_trip(self):
        registry, tracer = self._run_block()
        buf = io.StringIO()
        n = export_jsonl(buf, registry, tracer, meta={"command": "test"})
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert len(lines) == n == 5  # meta + 2 spans + 2 metrics
        assert lines[0] == {
            "type": "meta", "format": "repro-obs-v1", "command": "test",
        }
        spans = [rec for rec in lines if rec["type"] == "span"]
        by_name = {rec["name"]: rec for rec in spans}
        assert by_name["feed"]["parent_id"] == by_name["generate"]["id"]
        assert by_name["feed"]["attrs"] == {"words": 64}
        counter = next(rec for rec in lines if rec["type"] == "counter")
        assert counter == {
            "type": "counter", "name": "repro_test_total", "value": 2,
        }
        hist = next(rec for rec in lines if rec["type"] == "histogram")
        assert hist["count"] == 1
        assert hist["buckets"] == [[1.0, 1], ["+Inf", 1]]

    def test_file_target(self, tmp_path):
        registry, tracer = self._run_block()
        path = tmp_path / "trace.jsonl"
        export_jsonl(path, registry, tracer)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["format"] == "repro-obs-v1"
        assert all(json.loads(line) for line in lines)
