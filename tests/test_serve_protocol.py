"""Wire-protocol tests: framing, payload codecs, and failure modes."""

import socket
import struct

import numpy as np
import pytest

from repro.serve import protocol as proto


class TestFraming:
    def test_pack_frame_layout(self):
        frame = proto.pack_frame(proto.OP_HELLO, b"abc")
        (length,) = struct.unpack("!I", frame[:4])
        assert length == 4  # opcode + 3 payload bytes
        assert frame[4] == proto.OP_HELLO
        assert frame[5:] == b"abc"

    def test_pack_frame_rejects_bad_opcode(self):
        with pytest.raises(proto.ProtocolError):
            proto.pack_frame(0x1FF)

    def test_pack_frame_rejects_oversize(self):
        with pytest.raises(proto.ProtocolError):
            proto.pack_frame(proto.OP_VALUES, b"x" * proto.MAX_FRAME_BYTES)

    def test_hello_validation(self):
        with pytest.raises(proto.ProtocolError):
            proto.pack_hello("")
        with pytest.raises(proto.ProtocolError):
            proto.pack_hello("x" * (proto.MAX_SESSION_ID_BYTES + 1))
        frame = proto.pack_hello("worker-1")
        assert frame[5:] == b"worker-1"

    def test_fetch_validation(self):
        for bad in (0, -1, proto.MAX_FETCH_COUNT + 1):
            with pytest.raises(proto.ProtocolError):
                proto.pack_fetch(bad)
        frame = proto.pack_fetch(42)
        assert struct.unpack("!I", frame[5:])[0] == 42


class TestValueCodec:
    def test_roundtrip(self):
        values = np.array(
            [0, 1, 2**63, 2**64 - 1, 0xDEADBEEFCAFEBABE], dtype=np.uint64
        )
        decoded = proto.decode_values(proto.encode_values(values))
        assert decoded.dtype == np.uint64
        np.testing.assert_array_equal(decoded, values)

    def test_big_endian_on_the_wire(self):
        payload = proto.encode_values(np.array([1], dtype=np.uint64))
        assert payload == b"\x00\x00\x00\x00\x00\x00\x00\x01"

    def test_decode_rejects_ragged_payload(self):
        with pytest.raises(proto.ProtocolError):
            proto.decode_values(b"\x00" * 7)

    def test_decoded_array_is_writable(self):
        out = proto.decode_values(b"\x00" * 16)
        out[0] = 7  # frombuffer views are read-only; the codec must copy
        assert out[0] == 7


class TestZeroCopyPayload:
    def test_frame_header_matches_pack_frame_prefix(self):
        frame = proto.pack_frame(proto.OP_VALUES, b"abc")
        assert proto.frame_header(proto.OP_VALUES, 3) == frame[:5]

    def test_frame_header_rejects_oversize(self):
        with pytest.raises(proto.ProtocolError):
            proto.frame_header(proto.OP_VALUES, proto.MAX_FRAME_BYTES)

    def test_values_payload_roundtrips(self):
        values = np.array(
            [0, 1, 2**63, 2**64 - 1, 0xDEADBEEFCAFEBABE], dtype=np.uint64
        )
        payload = proto.values_payload(values.copy())
        assert isinstance(payload, memoryview)
        np.testing.assert_array_equal(
            proto.decode_values(bytes(payload)), values
        )

    def test_values_payload_equals_encode_values(self):
        values = np.arange(64, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        assert bytes(proto.values_payload(values.copy())) == (
            proto.encode_values(values)
        )

    def test_values_payload_consumes_the_array(self):
        """The fast path byteswaps in place: the caller's array is NOT
        usable afterwards (documented contract; fetch paths hand over
        freshly produced arrays)."""
        import sys

        values = np.array([1, 2, 3], dtype=np.uint64)
        payload = proto.values_payload(values)
        assert bytes(payload) == proto.encode_values(
            np.array([1, 2, 3], dtype=np.uint64)
        )
        if sys.byteorder == "little":
            assert values[0] == np.uint64(1 << 56)  # swapped in place

    def test_values_payload_is_a_view_not_a_copy(self):
        values = np.arange(8, dtype=np.uint64)
        payload = proto.values_payload(values)
        assert payload.obj is values.data.obj or np.shares_memory(
            np.frombuffer(payload, dtype=np.uint64), values
        )

    def test_values_payload_falls_back_for_nonconforming_input(self):
        strided = np.arange(16, dtype=np.uint64)[::2]
        want = proto.encode_values(strided.copy())
        assert bytes(proto.values_payload(strided)) == want
        # Fallback must not mutate the input.
        np.testing.assert_array_equal(strided, np.arange(0, 16, 2))

        readonly = np.arange(4, dtype=np.uint64)
        readonly.flags.writeable = False
        assert bytes(proto.values_payload(readonly)) == (
            proto.encode_values(readonly)
        )


class TestSocketFraming:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5)
        b.settimeout(5)
        return a, b

    def test_roundtrip_over_socketpair(self):
        a, b = self._pair()
        try:
            a.sendall(proto.pack_frame(proto.OP_VALUES, b"\x01" * 8))
            opcode, payload = proto.read_frame_socket(b)
            assert opcode == proto.OP_VALUES
            assert payload == b"\x01" * 8
        finally:
            a.close()
            b.close()

    def test_truncated_frame_raises(self):
        a, b = self._pair()
        try:
            frame = proto.pack_frame(proto.OP_VALUES, b"\x01" * 8)
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(proto.ProtocolError, match="mid-frame"):
                proto.read_frame_socket(b)
        finally:
            b.close()

    def test_oversized_length_rejected_before_read(self):
        a, b = self._pair()
        try:
            a.sendall(struct.pack("!I", proto.MAX_FRAME_BYTES + 1))
            with pytest.raises(proto.ProtocolError, match="too large"):
                proto.read_frame_socket(b)
        finally:
            a.close()
            b.close()


class TestJsonHelpers:
    def test_json_payload_roundtrip(self):
        doc = proto.decode_json_payload(b'{"ok": true, "n": 3}')
        assert doc == {"ok": True, "n": 3}

    def test_json_payload_must_be_object(self):
        with pytest.raises(proto.ProtocolError):
            proto.decode_json_payload(b"[1, 2]")
        with pytest.raises(proto.ProtocolError):
            proto.decode_json_payload(b"\xff\xfe")

    def test_json_line_newline_terminated(self):
        line = proto.json_line({"op": "fetch", "n": 1})
        assert line.endswith(b"\n")
        assert b'"op"' in line
