"""Tests for the depth-resolved absorption profile."""

import numpy as np
import pytest

from repro.apps.photon import (
    DepthProfile,
    Layer,
    MCPhotonMigration,
    TissueModel,
    three_layer_skin,
)
from repro.baselines.mt19937 import MT19937


class TestDepthProfile:
    def test_totals_match_flat_tally(self):
        model = three_layer_skin()
        prof = DepthProfile(model, n_bins=50)
        sim = MCPhotonMigration(model, MT19937(5), batch_size=8000,
                                depth_profile=prof)
        res = sim.run(8000)
        assert prof.total_absorbed() == pytest.approx(
            res.fractions()["absorbed"], abs=1e-9
        )

    def test_bins_cover_depth(self):
        model = three_layer_skin()
        prof = DepthProfile(model, n_bins=40)
        assert prof.z_centers[0] == pytest.approx(prof.dz / 2)
        assert prof.z_centers[-1] == pytest.approx(
            model.total_thickness - prof.dz / 2
        )

    def test_absorption_decays_with_depth(self):
        """In a homogeneous absorbing slab, A(z) decays monotonically
        (Beer-Lambert-like) when scattering is weak."""
        slab = TissueModel(
            layers=(Layer(n=1.0, mua=5.0, mus=0.1, g=0.0, thickness=1.0),),
        )
        prof = DepthProfile(slab, n_bins=20)
        sim = MCPhotonMigration(slab, MT19937(6), batch_size=20000,
                                depth_profile=prof)
        sim.run(20000)
        a = prof.absorption_density()
        assert a[0] > a[10] > a[19]
        # First-bin density ~ mua * exp(-mua * z) at z ~ dz/2.
        expect = 5.0 * np.exp(-5.0 * prof.z_centers[0])
        assert a[0] == pytest.approx(expect, rel=0.1)

    def test_fluence_positive(self):
        model = three_layer_skin()
        prof = DepthProfile(model, n_bins=30)
        sim = MCPhotonMigration(model, MT19937(7), batch_size=5000,
                                depth_profile=prof)
        sim.run(5000)
        phi = prof.fluence()
        assert (phi >= 0).all()
        assert phi.max() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DepthProfile(three_layer_skin(), n_bins=0)

    def test_simulator_without_profile_unchanged(self):
        model = three_layer_skin()
        a = MCPhotonMigration(model, MT19937(9), batch_size=3000)
        b = MCPhotonMigration(model, MT19937(9), batch_size=3000,
                              depth_profile=DepthProfile(model))
        fa = a.run(3000).fractions()
        fb = b.run(3000).fractions()
        assert fa == fb
