"""Cross-cutting property-based tests (hypothesis) over the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import available_generators, make_generator
from repro.bitsource import SplitMix64Source
from repro.core.expander import GabberGalilExpander
from repro.core.walk import WalkEngine
from repro.gpusim.calibration import PipelineCosts
from repro.gpusim.pipeline import PipelineConfig
from repro.hybrid.throughput import hybrid_time_ns

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestGeneratorProperties:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_every_generator_reseed_identity(self, seed):
        """reseed(s) then draw == fresh instance with seed s, for all."""
        for name in available_generators():
            a = make_generator(name, seed=seed)
            first = a.u32_array(32).copy()
            a.u32_array(100)
            a.reseed(seed)
            assert np.array_equal(a.u32_array(32), first), name

    @given(seeds, st.integers(min_value=1, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_request_splitting_invariance(self, seed, split):
        """Drawing n values equals drawing split + (n - split) values."""
        for name in ["Mersenne Twister", "CURAND", "MWC", "LCG64"]:
            n = 300
            k = min(split, n)
            a = make_generator(name, seed=seed)
            b = make_generator(name, seed=seed)
            whole = a.u32_array(n)
            parts = np.concatenate([b.u32_array(k), b.u32_array(n - k)]) \
                if n > k else b.u32_array(k)
            assert np.array_equal(whole, parts), name


class TestWalkProperties:
    @given(seeds, st.integers(min_value=1, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_walk_is_reversible(self, seed, length):
        """Applying recorded steps' inverse maps returns to the start."""
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="mod")
        start = SplitMix64Source(seed).words64(8)
        state = eng.make_state(start)
        x0, y0 = state.x.copy(), state.y.copy()

        chunks = SplitMix64Source(seed + 1).chunks3(length * 8).reshape(length, 8)
        ks_list = []
        for i in range(length):
            ks = np.where(chunks[i] >= 7, chunks[i] - 7, chunks[i])
            ks_list.append(ks)
            eng._apply_indices(state, ks)

        x, y = state.x, state.y
        for ks in reversed(ks_list):
            x, y = g.inverse_neighbor_arrays(x, y, ks)
        assert np.array_equal(x.astype(np.uint32), x0)
        assert np.array_equal(y.astype(np.uint32), y0)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_walker_count_invariance_of_lane_zero(self, seed):
        """Lane 0's trajectory is identical whatever the bank width,
        given the same per-step chunk column assignment."""
        g = GabberGalilExpander()
        eng = WalkEngine(g, policy="mod")
        starts = SplitMix64Source(seed).words64(16)
        wide = eng.make_state(starts)
        chunks = SplitMix64Source(seed + 9).chunks3(16 * 5).reshape(5, 16)
        for i in range(5):
            ks = np.where(chunks[i] >= 7, chunks[i] - 7, chunks[i])
            eng._apply_indices(wide, ks)

        narrow = eng.make_state(starts[:4])
        for i in range(5):
            row = chunks[i, :4]
            ks = np.where(row >= 7, row - 7, row)
            eng._apply_indices(narrow, ks)
        assert np.array_equal(wide.x[:4], narrow.x)
        assert np.array_equal(wide.y[:4], narrow.y)


class TestPipelineProperties:
    @given(
        st.integers(min_value=10_000, max_value=10_000_000),
        st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_time_positive_and_superlinear_floor(self, n, s):
        t = hybrid_time_ns(PipelineConfig(total_numbers=n, batch_size=s))
        costs = PipelineCosts()
        # Completion can never beat the raw GPU generate time at full
        # occupancy, nor the raw CPU feed time.
        assert t >= n * costs.generate_ns * 0.999
        assert t >= n * costs.feed_ns * 0.5  # feed overlaps with init only

    @given(st.integers(min_value=100_000, max_value=5_000_000))
    @settings(max_examples=20, deadline=None)
    def test_time_monotone_in_n(self, n):
        """Time never decreases with N.

        Below the occupancy saturation point doubling N only widens the
        kernels without lengthening them (idle cores absorb the work), so
        equality is legitimate there; past saturation growth is strict.
        """
        t1 = hybrid_time_ns(PipelineConfig(total_numbers=n, batch_size=100))
        t2 = hybrid_time_ns(PipelineConfig(total_numbers=2 * n, batch_size=100))
        assert t2 >= t1 * (1 - 1e-12)  # tolerate summation-order ULPs
        threads = PipelineConfig(total_numbers=n, batch_size=100).num_threads
        if threads >= PipelineCosts().full_occupancy_threads:
            assert t2 > t1

    @given(st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=20, deadline=None)
    def test_time_monotone_in_feed_cost(self, feed_ns):
        base = PipelineCosts()
        slow = PipelineCosts(
            feed_ns=base.feed_ns + feed_ns,
            transfer_ns=base.transfer_ns,
            generate_ns=base.generate_ns,
        )
        cfg_fast = PipelineConfig(total_numbers=10**6, batch_size=100)
        cfg_slow = PipelineConfig(
            total_numbers=10**6, batch_size=100, costs=slow
        )
        assert hybrid_time_ns(cfg_slow) >= hybrid_time_ns(cfg_fast)


class TestOutputStatisticalProperties:
    @given(seeds)
    @settings(max_examples=5, deadline=None)
    def test_hybrid_bit_balance_any_seed(self, seed):
        from repro.baselines.hybrid_adapter import HybridPRNG

        gen = HybridPRNG(
            seed=1, num_threads=1024, bit_source=SplitMix64Source(seed)
        )
        bits = gen.bits_stream(64_000)
        assert abs(bits.mean() - 0.5) < 0.02

    @given(seeds)
    @settings(max_examples=5, deadline=None)
    def test_uniform53_moments_any_seed(self, seed):
        from repro.baselines.hybrid_adapter import HybridPRNG

        gen = HybridPRNG(
            seed=1, num_threads=1024, bit_source=SplitMix64Source(seed)
        )
        u = gen.uniform53(20_000)
        assert abs(u.mean() - 0.5) < 0.02
        assert abs(u.var() - 1 / 12) < 0.01
