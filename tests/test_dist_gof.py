"""Goodness-of-fit tests for the ``repro.dist`` samplers.

Fixed seeds, generous p-value floors (0.01): these are correctness
tests of the transforms (a wrong ziggurat table or a biased bounded
integer fails them decisively), not flakiness probes.
"""

import numpy as np
import pytest
import scipy.stats as sps

from repro.baselines.mt19937 import MT19937
from repro.dist import DistStream
from repro.dist.tables import ZIG_R, ZIG_TAIL_SF


def stream(seed=271828):
    return DistStream(MT19937(seed).u64_array)


N = 200_000


class TestUniform01:
    def test_ks(self):
        assert sps.kstest(stream().uniform01(N), "uniform").pvalue > 0.01

    def test_range_and_granularity(self):
        x = stream().uniform01(N)
        assert x.min() >= 0.0 and x.max() < 1.0
        # 53-bit mantissas: values times 2**53 are exact integers.
        scaled = x * 2.0**53
        assert np.array_equal(scaled, np.floor(scaled))


class TestNormal:
    @pytest.mark.parametrize("method", ["ziggurat", "polar", "boxmuller"])
    def test_ks(self, method):
        x = stream().normal(N, method=method)
        assert sps.kstest(x, "norm").pvalue > 0.01

    @pytest.mark.parametrize("method", ["ziggurat", "polar", "boxmuller"])
    def test_moments(self, method):
        x = stream().normal(N, mean=3.0, std=2.0, method=method)
        assert x.mean() == pytest.approx(3.0, abs=0.05)
        assert x.std() == pytest.approx(2.0, abs=0.05)

    def test_ziggurat_tail_mass(self):
        """The exact-inversion tail: mass beyond R matches 2*(1-Phi(R)).

        This is the test a discard-the-attempt tail resampler would
        fail -- it undersamples the tail by its acceptance rate.
        """
        n = 2_000_000
        x = stream().normal(n)
        observed = int(np.count_nonzero(np.abs(x) > ZIG_R))
        expected = 2.0 * ZIG_TAIL_SF * n
        # Poisson-ish count (~516 expected): 5 sigma window.
        assert abs(observed - expected) < 5.0 * np.sqrt(expected)

    def test_ziggurat_extreme_quantiles(self):
        x = stream().normal(2_000_000)
        for q in (1e-5, 1e-4, 1e-3):
            lo = float(np.quantile(x, q))
            assert lo == pytest.approx(sps.norm.ppf(q), abs=0.15)


class TestExponential:
    def test_ks(self):
        x = stream().exponential(N, rate=1.0)
        assert sps.kstest(x, "expon").pvalue > 0.01

    def test_rate_scaling_ks(self):
        x = stream().exponential(N, rate=2.5)
        assert sps.kstest(
            x, "expon", args=(0, 1 / 2.5)
        ).pvalue > 0.01

    def test_strictly_positive(self):
        assert (stream().exponential(N) > 0).all()


class TestIntegers:
    def test_chi2_uniform(self):
        # 97 cells (prime, not a power of two): modulo bias or a wrong
        # Lemire threshold shows up as a huge chi-square.
        x = stream().integers(N, 0, 97)
        counts = np.bincount(x, minlength=97)
        assert sps.chisquare(counts).pvalue > 0.01

    def test_chi2_signed_range(self):
        x = stream().integers(N, -31, 32)
        counts = np.bincount(x + 31, minlength=63)
        assert sps.chisquare(counts).pvalue > 0.01

    def test_near_full_span_has_no_dead_zone(self):
        """span = 2**64 - 1 rejects ~nothing but exercises the widest
        multiply; top/bottom halves must stay balanced."""
        x = stream().integers(N, 0, 2**64 - 1)
        high = int(np.count_nonzero(x >= np.uint64(2**63)))
        assert abs(high - N / 2) < 5 * np.sqrt(N / 4)


class TestLegacyWrappersAgree:
    def test_core_normal_is_dist_normal(self):
        """The deprecated core wrapper is a thin route into repro.dist
        (Box-Muller for backward compatibility of the stream)."""
        from repro.core.distributions import normal as core_normal

        legacy = core_normal(MT19937(5), 1001, mean=1.0, std=2.0)
        direct = stream(5).normal(1001, mean=1.0, std=2.0,
                                  method="boxmuller")
        np.testing.assert_array_equal(
            legacy.view(np.uint64), direct.view(np.uint64)
        )

    def test_core_exponential_is_dist_exponential(self):
        from repro.core.distributions import exponential as core_exp

        legacy = core_exp(MT19937(5), 777, rate=1.5)
        direct = stream(5).exponential(777, rate=1.5)
        np.testing.assert_array_equal(
            legacy.view(np.uint64), direct.view(np.uint64)
        )
