"""Tests for spectral/expansion analysis of the expander."""

import numpy as np
import pytest

from repro.core.expander import EDGE_EXPANSION_LOWER_BOUND, GabberGalilExpander
from repro.core.spectral import (
    edge_expansion_exact,
    mixing_time_bound,
    second_eigenvalue_modulus,
    spectral_gap,
    total_variation_from_uniform,
    transition_matrix,
    walk_distribution,
)


class TestTransitionMatrix:
    def test_row_stochastic(self):
        g = GabberGalilExpander(m=6)
        P = transition_matrix(g)
        rows = np.asarray(P.sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0)

    def test_doubly_stochastic(self):
        """Each map is a permutation, so columns also sum to one."""
        g = GabberGalilExpander(m=5)
        P = transition_matrix(g)
        cols = np.asarray(P.sum(axis=0)).ravel()
        assert np.allclose(cols, 1.0)

    def test_uniform_is_stationary(self):
        g = GabberGalilExpander(m=7)
        P = transition_matrix(g)
        n = P.shape[0]
        pi = np.full(n, 1.0 / n)
        assert np.allclose(pi @ P, pi)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            transition_matrix(GabberGalilExpander(m=2048))


class TestSpectralGap:
    @pytest.mark.parametrize("m", [5, 8, 13])
    def test_gap_positive(self, m):
        gap = spectral_gap(GabberGalilExpander(m=m))
        assert 0.0 < gap <= 1.0

    def test_second_eigenvalue_below_one(self):
        lam = second_eigenvalue_modulus(GabberGalilExpander(m=9))
        assert lam < 1.0

    def test_mixing_time_reasonable(self):
        """Mixing should be logarithmic-ish in n for a true expander."""
        t = mixing_time_bound(GabberGalilExpander(m=11), eps=1 / 64)
        assert 0 < t < 500

    def test_walk_converges_to_uniform(self):
        g = GabberGalilExpander(m=8)
        dist = walk_distribution(g, start=0, steps=64)
        tv = total_variation_from_uniform(dist)
        assert tv < 0.01

    def test_short_walk_far_from_uniform(self):
        g = GabberGalilExpander(m=8)
        dist = walk_distribution(g, start=0, steps=1)
        assert total_variation_from_uniform(dist) > 0.5


class TestEdgeExpansion:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_exact_expansion_positive(self, m):
        alpha = edge_expansion_exact(GabberGalilExpander(m=m))
        assert alpha > 0

    def test_exceeds_gabber_galil_bound_tiny(self):
        """On checkable sizes the construction beats the asymptotic bound."""
        alpha = edge_expansion_exact(GabberGalilExpander(m=3))
        assert alpha >= EDGE_EXPANSION_LOWER_BOUND

    def test_infeasible_size_rejected(self):
        with pytest.raises(ValueError, match="infeasible"):
            edge_expansion_exact(GabberGalilExpander(m=5))


class TestFamilyEigenvalue:
    @pytest.mark.parametrize("m", [4, 8, 16])
    def test_second_eigenvalue_is_five_sevenths(self, m):
        """|lambda_2| = 5/7 for every checked family member."""
        from repro.core.spectral import FAMILY_SECOND_EIGENVALUE

        lam = second_eigenvalue_modulus(GabberGalilExpander(m=m))
        assert lam == pytest.approx(FAMILY_SECOND_EIGENVALUE, abs=1e-6)

    def test_recommended_walk_length_paper_instance(self):
        from repro.core.spectral import recommended_walk_length

        t = recommended_walk_length()  # m = 2**32, eps = 2**-10
        assert 140 <= t <= 170
        # The bound must match the small-instance brute-force mixing time.
        g = GabberGalilExpander(m=8)
        t_small = recommended_walk_length(m=8, eps=1.0 / 64)
        dist = walk_distribution(g, start=0, steps=t_small)
        assert total_variation_from_uniform(dist) < 1.0 / 64

    def test_recommended_walk_length_validation(self):
        from repro.core.spectral import recommended_walk_length

        with pytest.raises(ValueError):
            recommended_walk_length(m=1)
        with pytest.raises(ValueError):
            recommended_walk_length(eps=1.5)


class TestTotalVariation:
    def test_uniform_is_zero(self):
        assert total_variation_from_uniform(np.full(10, 0.1)) == pytest.approx(0)

    def test_point_mass(self):
        d = np.zeros(10)
        d[0] = 1.0
        assert total_variation_from_uniform(d) == pytest.approx(0.9)
