"""Contract tests: every registered generator honours the PRNG interface."""

import numpy as np
import pytest

from repro.baselines import available_generators, make_generator

ALL = available_generators()


@pytest.fixture(params=ALL)
def gen(request):
    return make_generator(request.param, seed=17)


class TestContract:
    def test_registry_contains_paper_generators(self):
        for name in [
            "Hybrid PRNG",
            "Mersenne Twister",
            "CURAND",
            "CUDPP RAND",
            "glibc rand()",
        ]:
            assert name in ALL

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown generator"):
            make_generator("nope")

    def test_u32_dtype_and_count(self, gen):
        out = gen.u32_array(257)
        assert out.dtype == np.uint32 and out.size == 257

    def test_u64_dtype_and_count(self, gen):
        out = gen.u64_array(33)
        assert out.dtype == np.uint64 and out.size == 33

    def test_uniform_bounds(self, gen):
        u = gen.uniform(2000)
        assert (u >= 0).all() and (u < 1).all()

    def test_uniform53_bounds(self, gen):
        u = gen.uniform53(500)
        assert (u >= 0).all() and (u < 1).all()

    def test_bytes_stream(self, gen):
        b = gen.bytes_stream(1001)
        assert b.dtype == np.uint8 and b.size == 1001

    def test_bits_stream(self, gen):
        bits = gen.bits_stream(999)
        assert bits.size == 999
        assert set(np.unique(bits)) <= {0, 1}

    def test_reseed_reproduces(self, gen):
        first = gen.u32_array(64).copy()
        gen.u32_array(512)
        gen.reseed(17)
        assert np.array_equal(gen.u32_array(64), first)

    def test_determinism_across_instances(self):
        for name in ALL:
            a = make_generator(name, seed=23).u32_array(128)
            b = make_generator(name, seed=23).u32_array(128)
            assert np.array_equal(a, b), name

    def test_rough_uniformity(self, gen):
        u = gen.uniform(20_000)
        assert abs(u.mean() - 0.5) < 0.02
        assert abs(u.var() - 1 / 12) < 0.02

    def test_name_is_set(self, gen):
        assert gen.name and gen.name != "prng"

    def test_negative_count_rejected(self, gen):
        with pytest.raises(ValueError):
            gen.u32_array(-1)
