"""Tests for the thread-safe module-level rand() API."""

import threading

from repro.core import api


class TestBasicCalls:
    def test_rand_returns_64bit_int(self):
        api.srand(1)
        v = api.rand()
        assert isinstance(v, int) and 0 <= v < 2**64

    def test_random_in_unit_interval(self):
        api.srand(2)
        assert 0 <= api.random() < 1

    def test_randint(self):
        api.srand(3)
        assert 0 <= api.randint(0, 10) < 10

    def test_seeding_is_reproducible(self):
        api.srand(99)
        a = [api.rand() for _ in range(5)]
        api.srand(99)
        b = [api.rand() for _ in range(5)]
        assert a == b

    def test_different_seeds_differ(self):
        api.srand(1)
        a = api.rand()
        api.srand(2)
        b = api.rand()
        assert a != b


class TestThreadSafety:
    def test_threads_get_independent_streams(self):
        api.srand(7)
        results = {}

        def worker(tid):
            results[tid] = [api.rand() for _ in range(5)]

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All streams distinct from each other and from the main thread.
        streams = list(results.values()) + [[api.rand() for _ in range(5)]]
        flat = [tuple(s) for s in streams]
        assert len(set(flat)) == len(flat)

    def test_concurrent_calls_do_not_crash(self):
        api.srand(8)
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    api.random()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_generator_identity_stable_within_thread(self):
        api.srand(9)
        g1 = api.get_thread_generator()
        g2 = api.get_thread_generator()
        assert g1 is g2

    def test_srand_resets_generator(self):
        api.srand(10)
        g1 = api.get_thread_generator()
        api.srand(11)
        g2 = api.get_thread_generator()
        assert g1 is not g2
