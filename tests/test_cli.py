"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.n == 10 and args.format == "hex"

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quality", "--generator", "nope"])


class TestGenerate:
    def test_hex_output(self, capsys):
        assert main(["generate", "-n", "3", "--threads", "64"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(line.startswith("0x") and len(line) == 18 for line in lines)

    def test_int_output(self, capsys):
        main(["generate", "-n", "2", "--format", "int", "--threads", "64"])
        for line in capsys.readouterr().out.strip().splitlines():
            assert 0 <= int(line) < 2**64

    def test_float_output(self, capsys):
        main(["generate", "-n", "5", "--format", "float", "--threads", "64"])
        vals = [float(v) for v in capsys.readouterr().out.split()]
        assert all(0 <= v < 1 for v in vals)

    def test_deterministic_by_seed(self, capsys):
        main(["generate", "-n", "2", "--seed", "9", "--threads", "64"])
        first = capsys.readouterr().out
        main(["generate", "-n", "2", "--seed", "9", "--threads", "64"])
        assert capsys.readouterr().out == first


class TestPlatform:
    def test_reports_throughput(self, capsys):
        assert main(["platform", "-n", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "GNumbers/s" in out and "GPU idle" in out


class TestFigures:
    @pytest.mark.parametrize("which", ["fig3", "fig5", "fig6"])
    def test_prints_table(self, which, capsys):
        assert main(["figures", which]) == 0
        assert "Figure" in capsys.readouterr().out


class TestQuality:
    def test_smallcrush_on_fast_generator(self, capsys):
        rc = main([
            "quality", "--generator", "Mersenne Twister",
            "--battery", "smallcrush", "--scale", "0.1",
        ])
        out = capsys.readouterr().out
        assert "SmallCrush" in out
        assert rc in (0, 1)
