"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.n == 10 and args.format == "hex"

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quality", "--generator", "nope"])


class TestGenerate:
    def test_hex_output(self, capsys):
        assert main(["generate", "-n", "3", "--threads", "64"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(line.startswith("0x") and len(line) == 18 for line in lines)

    def test_int_output(self, capsys):
        main(["generate", "-n", "2", "--format", "int", "--threads", "64"])
        for line in capsys.readouterr().out.strip().splitlines():
            assert 0 <= int(line) < 2**64

    def test_float_output(self, capsys):
        main(["generate", "-n", "5", "--format", "float", "--threads", "64"])
        vals = [float(v) for v in capsys.readouterr().out.split()]
        assert all(0 <= v < 1 for v in vals)

    def test_deterministic_by_seed(self, capsys):
        main(["generate", "-n", "2", "--seed", "9", "--threads", "64"])
        first = capsys.readouterr().out
        main(["generate", "-n", "2", "--seed", "9", "--threads", "64"])
        assert capsys.readouterr().out == first

    def test_large_n_streams_every_line(self, capsys):
        assert main(["generate", "-n", "100000", "--format", "int"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 100_000
        assert all(0 <= int(line) < 2**64 for line in (lines[0], lines[-1]))


class TestGenerateObservability:
    def test_trace_and_metrics_cover_pipeline_stages(self, capsys, tmp_path):
        """Acceptance: ``generate -n 100000 --trace out.jsonl --metrics``
        emits JSONL spans covering feed/transfer/generate plus a
        Prometheus-style metrics dump."""
        out = tmp_path / "out.jsonl"
        rc = main(["generate", "-n", "100000", "--trace", str(out),
                   "--metrics"])
        assert rc == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 100_000

        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records[0]["format"] == "repro-obs-v1"
        assert records[0]["command"] == "generate"
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"feed", "transfer", "generate"} <= span_names
        counters = {
            r["name"]: r["value"] for r in records if r["type"] == "counter"
        }
        assert counters["repro_prng_numbers_total"] >= 100_000
        assert counters["repro_feed_refills_total"] >= 1

        prom = captured.err
        assert "# TYPE repro_prng_numbers_total counter" in prom
        assert "# TYPE repro_feed_queue_depth gauge" in prom

    def test_traced_output_identical_to_plain(self, capsys, tmp_path):
        main(["generate", "-n", "50", "--seed", "7", "--threads", "64"])
        plain = capsys.readouterr().out
        main(["generate", "-n", "50", "--seed", "7", "--threads", "64",
              "--trace", str(tmp_path / "t.jsonl")])
        assert capsys.readouterr().out == plain

    def test_observability_off_after_run(self, tmp_path):
        main(["generate", "-n", "5", "--threads", "64",
              "--trace", str(tmp_path / "t.jsonl")])
        assert not obs.metrics_enabled()
        assert not obs.tracing_enabled()


class TestStats:
    def test_prints_stage_report(self, capsys):
        assert main(["stats", "-n", "20000"]) == 0
        out = capsys.readouterr().out
        assert "pipeline stages" in out
        assert "feed" in out and "generate" in out
        assert "buffered feed" in out

    def test_json_report(self, capsys):
        assert main(["stats", "-n", "20000", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["plan"]["total_numbers"] == 20_000
        assert {"feed", "transfer", "generate"} <= set(report["stages"])
        assert report["feed"]["words_consumed"] > 0
        assert report["prediction"]["total_ns"] > 0

    def test_trace_file_written(self, capsys, tmp_path):
        out = tmp_path / "stats.jsonl"
        assert main(["stats", "-n", "20000", "--trace", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records[0]["command"] == "stats"
        assert any(r.get("name") == "plan" for r in records)


class TestPlatform:
    def test_reports_throughput(self, capsys):
        assert main(["platform", "-n", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "GNumbers/s" in out and "GPU idle" in out


class TestFigures:
    @pytest.mark.parametrize("which", ["fig3", "fig5", "fig6"])
    def test_prints_table(self, which, capsys):
        assert main(["figures", which]) == 0
        assert "Figure" in capsys.readouterr().out


class TestChaos:
    def test_absorbing_profile_exits_zero_with_report(self, capsys):
        rc = main(["chaos", "--profile", "failover", "-n", "50000",
                   "--threads", "256"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "resilience" in captured.out
        assert "survived profile 'failover'" in captured.err
        assert "failovers" in captured.err

    def test_flaky_profile_reports_retries(self, capsys):
        rc = main(["chaos", "--profile", "flaky", "-n", "100000",
                   "--threads", "256"])
        captured = capsys.readouterr()
        assert rc == 0
        report = captured.out
        assert "retries" in report
        assert "health" in report

    def test_fatal_profile_exits_nonzero_with_diagnosis(self, capsys):
        rc = main(["chaos", "--profile", "fatal", "-n", "50000",
                   "--threads", "256"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAILED under profile 'fatal'" in captured.err
        assert "FeedFailedError" in captured.err
        # The report still renders, with the failure section included.
        assert "failure" in captured.out

    def test_json_report(self, capsys):
        rc = main(["chaos", "--profile", "none", "-n", "20000",
                   "--threads", "256", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["resilience"]["health"] == "OK"
        assert report["resilience"]["failovers"] == 0

    def test_async_feed_flag(self, capsys):
        rc = main(["chaos", "--profile", "failover", "-n", "50000",
                   "--threads", "256", "--async-feed"])
        assert rc == 0
        assert "survived" in capsys.readouterr().err

    def test_trace_export(self, capsys, tmp_path):
        out = tmp_path / "chaos.jsonl"
        rc = main(["chaos", "--profile", "failover", "-n", "50000",
                   "--threads", "256", "--trace", str(out)])
        assert rc == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records[0]["command"] == "chaos"
        assert records[0]["profile"] == "failover"
        counters = {
            r["name"] for r in records if r["type"] == "counter"
        }
        assert "repro_feed_failovers_total" in counters

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--profile", "nope"])

    def test_observability_off_after_run(self):
        main(["chaos", "--profile", "none", "-n", "5000",
              "--threads", "256"])
        assert not obs.metrics_enabled()
        assert not obs.tracing_enabled()


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        from repro.cli import package_version

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"

    def test_package_version_is_a_version_string(self):
        from repro.cli import package_version

        version = package_version()
        assert version and version[0].isdigit()


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8731
        assert args.seed == 1
        assert args.workers == 2
        assert args.rate is None
        assert args.duration is None

    def test_fetch_defaults(self):
        args = build_parser().parse_args(["fetch"])
        assert args.port == 8731
        assert args.n == 10
        assert args.format == "hex"
        assert args.retries == 5
        assert not args.status


class TestFetchCommand:
    """``repro fetch`` against a live in-process server."""

    @pytest.fixture()
    def server(self):
        from repro.serve import ServeConfig, serve_background

        with serve_background(ServeConfig(master_seed=77)) as handle:
            yield handle

    def test_fetch_hex(self, server, capsys):
        rc = main(["fetch", "--port", str(server.port),
                   "--session", "cli", "-n", "3"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(line.startswith("0x") and len(line) == 18 for line in lines)

    def test_fetch_reproduces_session_stream(self, server, capsys):
        from repro.serve.session import SessionStream

        main(["fetch", "--port", str(server.port),
              "--session", "cli-int", "-n", "4", "--format", "int"])
        got = [int(v) for v in capsys.readouterr().out.split()]
        want = SessionStream("cli-int", master_seed=77).generate(4)
        assert got == [int(v) for v in want]

    def test_fetch_float(self, server, capsys):
        rc = main(["fetch", "--port", str(server.port),
                   "--session", "cli-f", "-n", "5", "--format", "float"])
        assert rc == 0
        vals = [float(v) for v in capsys.readouterr().out.split()]
        assert all(0 <= v < 1 for v in vals)

    def test_fetch_status(self, server, capsys):
        rc = main(["fetch", "--port", str(server.port), "--status"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["server"]["health"] == "OK"
        assert "queue_depth" in doc["server"]

    def test_fetch_connection_refused_exits_nonzero(self, capsys):
        # An unused ephemeral port: connecting must fail cleanly, not hang.
        import socket

        spare = socket.socket()
        spare.bind(("127.0.0.1", 0))
        dead_port = spare.getsockname()[1]
        spare.close()
        rc = main(["fetch", "--port", str(dead_port), "-n", "1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_fetch_server_error_exits_3(self, capsys):
        from repro.serve import ServeConfig, serve_background

        with serve_background(ServeConfig(max_fetch=10)) as handle:
            rc = main(["fetch", "--port", str(handle.port),
                       "--session", "big", "-n", "100"])
        assert rc == 3
        assert "fetch count" in capsys.readouterr().err


class TestQuality:
    def test_smallcrush_on_fast_generator(self, capsys):
        rc = main([
            "quality", "--generator", "Mersenne Twister",
            "--battery", "smallcrush", "--scale", "0.1",
        ])
        out = capsys.readouterr().out
        assert "SmallCrush" in out
        assert rc in (0, 1)


class TestGenerateDist:
    """``generate --dist``: typed variates from the CLI."""

    def test_normal_output(self, capsys):
        rc = main(["generate", "-n", "5", "--dist", "normal",
                   "--params", "mean=1,std=2", "--threads", "64"])
        assert rc == 0
        vals = [float(v) for v in capsys.readouterr().out.split()]
        assert len(vals) == 5 and all(np.isfinite(vals))

    def test_integers_output_and_bounds(self, capsys):
        rc = main(["generate", "-n", "50", "--dist", "integers",
                   "--params", "lo=-5,hi=5", "--threads", "64"])
        assert rc == 0
        vals = [int(v) for v in capsys.readouterr().out.split()]
        assert all(-5 <= v < 5 for v in vals)

    def test_matches_dist_stream(self, capsys):
        """The CLI emits exactly DistStream's variates for that word
        stream (printed %.17g, which round-trips float64)."""
        from repro.baselines.hybrid_adapter import HybridPRNG
        from repro.dist import DistStream

        main(["generate", "-n", "7", "--dist", "uniform01",
              "--seed", "5", "--threads", "64"])
        got = np.array([float(v) for v in capsys.readouterr().out.split()])
        want = DistStream(
            HybridPRNG(seed=5, num_threads=64).u64_array
        ).uniform01(7)
        np.testing.assert_array_equal(
            got.view(np.uint64), want.view(np.uint64)
        )

    def test_deterministic_by_seed(self, capsys):
        argv = ["generate", "-n", "4", "--dist", "exponential",
                "--params", "rate=2", "--seed", "6", "--threads", "64"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_bad_params_exit_2(self, capsys):
        rc = main(["generate", "-n", "2", "--dist", "normal",
                   "--params", "bogus=1"])
        assert rc == 2
        assert "unknown parameter" in capsys.readouterr().err

    def test_params_without_dist_exit_2(self, capsys):
        rc = main(["generate", "-n", "2", "--params", "mean=1"])
        assert rc == 2
        assert "--params requires --dist" in capsys.readouterr().err

    def test_integers_require_bounds(self, capsys):
        rc = main(["generate", "-n", "2", "--dist", "integers"])
        assert rc == 2
        assert "lo" in capsys.readouterr().err


class TestFetchDist:
    """``repro fetch --dist`` against a live in-process server."""

    @pytest.fixture()
    def server(self):
        from repro.serve import ServeConfig, serve_background

        with serve_background(ServeConfig(master_seed=77)) as handle:
            yield handle

    def test_fetch_variates_reproduce_session_stream(self, server, capsys):
        from repro.serve.session import SessionStream

        rc = main(["fetch", "--port", str(server.port),
                   "--session", "cli-v", "-n", "6", "--dist", "normal",
                   "--params", "mean=0,std=1"])
        assert rc == 0
        got = np.array([float(v) for v in capsys.readouterr().out.split()])
        want, _ = SessionStream("cli-v", master_seed=77).variates(
            "normal", 6, {"mean": 0.0, "std": 1.0}
        )
        np.testing.assert_array_equal(
            got.view(np.uint64), want.view(np.uint64)
        )

    def test_fetch_integers(self, server, capsys):
        rc = main(["fetch", "--port", str(server.port),
                   "--session", "cli-vi", "-n", "20", "--dist", "integers",
                   "--params", "lo=0,hi=10"])
        assert rc == 0
        vals = [int(v) for v in capsys.readouterr().out.split()]
        assert len(vals) == 20 and all(0 <= v < 10 for v in vals)

    def test_fetch_bad_params_exit_2(self, server, capsys):
        rc = main(["fetch", "--port", str(server.port), "-n", "2",
                   "--dist", "integers", "--params", "lo=1"])
        assert rc == 2
        assert "requires" in capsys.readouterr().err
