"""Tests for the list-ranking application (linked lists, FIS, 3 phases)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.listranking import (
    FIS_REMOVAL_FRACTION,
    LinkedList,
    NIL,
    OnDemandBits,
    PregeneratedBits,
    ordered_list,
    phase1_times_ms,
    random_list,
    rank_list_hybrid,
    reduce_list,
    select_fis,
    serial_ranks,
    survivor_profile,
    wyllie_ranks,
)
from repro.apps.listranking.helman_jaja import helman_jaja_weighted_ranks
from repro.bitsource import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG


def np_rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


def np_bits(seed=0):
    rng = np_rng(seed)
    return lambda k: (rng.random(k) < 0.5).astype(np.uint8)


class TestLinkedList:
    def test_ordered_list_structure(self):
        lst = ordered_list(5)
        assert lst.head == 0 and lst.tail == 4
        lst.validate()

    def test_random_list_valid(self):
        lst = random_list(100, np_rng(1))
        lst.validate()
        assert lst.num_nodes == 100

    def test_pred_inverts_succ(self):
        lst = random_list(50, np_rng(2))
        pred = lst.pred
        for v in range(50):
            s = lst.succ[v]
            if s != NIL:
                assert pred[s] == v
        assert pred[lst.head] == NIL

    def test_to_order_roundtrip(self):
        lst = random_list(30, np_rng(3))
        order = lst.to_order()
        assert order[0] == lst.head
        assert sorted(order) == list(range(30))

    def test_serial_ranks_ordered(self):
        lst = ordered_list(6)
        assert list(serial_ranks(lst)) == [5, 4, 3, 2, 1, 0]

    def test_validate_catches_cycle(self):
        lst = LinkedList(succ=np.array([1, 2, 0, NIL]), head=3)
        with pytest.raises(ValueError):
            lst.validate()

    def test_validate_catches_two_tails(self):
        lst = LinkedList(succ=np.array([NIL, NIL, 1]), head=2)
        with pytest.raises(ValueError):
            lst.validate()

    def test_bad_head(self):
        with pytest.raises(ValueError):
            LinkedList(succ=np.array([NIL]), head=5)


class TestWyllie:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 1000])
    def test_matches_serial(self, n):
        lst = random_list(n, np_rng(n))
        assert np.array_equal(wyllie_ranks(lst), serial_ranks(lst))

    def test_ordered(self):
        lst = ordered_list(257)
        assert np.array_equal(wyllie_ranks(lst), serial_ranks(lst))


class TestFis:
    def test_no_adjacent_members(self):
        lst = random_list(2000, np_rng(5))
        active = np.arange(2000)
        bits = np_bits(6)(2000)
        mask = select_fis(active, lst.succ, lst.pred, bits)
        members = set(active[mask].tolist())
        for v in members:
            s = lst.succ[v]
            assert s not in members

    def test_excludes_head_and_tail(self):
        lst = ordered_list(10)
        active = np.arange(10)
        bits = np.ones(10, dtype=np.uint8)
        mask = select_fis(active, lst.succ, lst.pred, bits)
        assert not mask[lst.head]
        # all bits 1 means nobody is selected anyway (neighbours chose 1)
        assert mask.sum() == 0

    def test_expected_fraction(self):
        lst = random_list(100_000, np_rng(7))
        active = np.arange(100_000)
        bits = np_bits(8)(100_000)
        mask = select_fis(active, lst.succ, lst.pred, bits)
        frac = mask.mean()
        assert abs(frac - FIS_REMOVAL_FRACTION) < 0.01

    def test_bit_count_mismatch(self):
        lst = ordered_list(5)
        with pytest.raises(ValueError):
            select_fis(np.arange(5), lst.succ, lst.pred, np.zeros(3, np.uint8))


class TestReduce:
    def test_reaches_target(self):
        n = 20_000
        lst = random_list(n, np_rng(9))
        active, succ, pred, wsucc, trace = reduce_list(lst, np_bits(10))
        assert active.size <= max(2, int(n / np.log2(n)))
        assert trace.total_removed == n - active.size

    def test_weights_conserved(self):
        """Total weight along the reduced chain equals n - 1."""
        n = 5000
        lst = random_list(n, np_rng(11))
        active, succ, pred, wsucc, trace = reduce_list(lst, np_bits(12))
        total = 0
        v = active[pred[active] == NIL][0]
        while succ[v] != NIL:
            total += wsucc[v]
            v = succ[v]
        assert total == n - 1

    def test_bits_requested_decreasing(self):
        lst = random_list(30_000, np_rng(13))
        _, _, _, _, trace = reduce_list(lst, np_bits(14))
        reqs = trace.bits_requested
        assert reqs[0] == 30_000
        assert reqs[-1] < reqs[0]

    def test_target_fraction_validation(self):
        lst = ordered_list(100)
        with pytest.raises(ValueError):
            reduce_list(lst, np_bits(1), target_fraction=2.0)


class TestHelmanJaja:
    def test_unweighted_chain(self):
        lst = ordered_list(100)
        wsucc = np.where(lst.succ != NIL, 1, 0).astype(np.int64)
        ranks = helman_jaja_weighted_ranks(
            np.arange(100), lst.succ, wsucc, head=0, num_splitters=8
        )
        assert np.array_equal(ranks, serial_ranks(lst))

    def test_weighted_chain(self):
        # Chain 0 -> 1 -> 2 with weights 5, 7: ranks 12, 7, 0.
        succ = np.array([1, 2, NIL])
        wsucc = np.array([5, 7, 0])
        ranks = helman_jaja_weighted_ranks(
            np.arange(3), succ, wsucc, head=0, num_splitters=2
        )
        assert list(ranks) == [12, 7, 0]

    def test_single_node(self):
        ranks = helman_jaja_weighted_ranks(
            np.array([0]), np.array([NIL]), np.array([0]), head=0
        )
        assert ranks[0] == 0

    @given(st.integers(min_value=2, max_value=400), st.integers(min_value=1, max_value=32))
    @settings(max_examples=25, deadline=None)
    def test_random_lists_any_splitter_count(self, n, k):
        lst = random_list(n, np_rng(n * 31 + k))
        wsucc = np.where(lst.succ != NIL, 1, 0).astype(np.int64)
        ranks = helman_jaja_weighted_ranks(
            np.arange(n), lst.succ, wsucc, head=lst.head, num_splitters=k,
            rng=np_rng(k),
        )
        assert np.array_equal(ranks, serial_ranks(lst))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            helman_jaja_weighted_ranks(
                np.empty(0, dtype=np.int64), np.array([NIL]), np.array([0]), head=0
            )


class TestHybridRanking:
    @pytest.mark.parametrize("n", [10, 100, 5000, 50_000])
    def test_matches_serial(self, n):
        lst = random_list(n, np_rng(n + 1))
        res = rank_list_hybrid(lst, np_bits(n))
        assert np.array_equal(res.ranks, serial_ranks(lst))

    def test_with_hybrid_prng_bits(self):
        lst = random_list(3000, np_rng(20))
        prng = ParallelExpanderPRNG(num_threads=512, bit_source=SplitMix64Source(3))
        provider = OnDemandBits(prng)
        res = rank_list_hybrid(lst, provider)
        assert np.array_equal(res.ranks, serial_ranks(lst))
        assert provider.bits_produced == res.trace.total_bits

    def test_pregenerated_waste_positive(self):
        lst = random_list(20_000, np_rng(21))
        src = np_rng(22)
        provider = PregeneratedBits(lambda k: src.random(k), initial_bound=20_000)
        res = rank_list_hybrid(lst, provider)
        assert np.array_equal(res.ranks, serial_ranks(lst))
        assert provider.waste > 0

    def test_pregenerated_validation(self):
        with pytest.raises(ValueError):
            PregeneratedBits(lambda k: np.zeros(k), 100, shrink_factor=0)


class TestTimingModel:
    def test_survivor_profile_decays(self):
        prof = survivor_profile(1_000_000)
        assert prof[0] == 1_000_000
        assert prof[-1] < prof[0] / 10

    def test_profile_from_trace(self):
        lst = random_list(10_000, np_rng(30))
        _, _, _, _, trace = reduce_list(lst, np_bits(31))
        prof = survivor_profile(10_000, trace=trace)
        assert prof == trace.bits_requested

    def test_ondemand_beats_pregenerated_by_about_40pc(self):
        t = phase1_times_ms(128_000_000)
        improvement = 1 - t["Hybrid (our PRNG)"] / t["Hybrid (glibc rand)"]
        assert 0.30 < improvement < 0.55

    def test_hybrid_beats_pure_gpu(self):
        t = phase1_times_ms(64_000_000)
        assert t["Hybrid (our PRNG)"] < t["Pure GPU MT"]

    def test_times_scale_with_n(self):
        small = phase1_times_ms(1_000_000)["Hybrid (our PRNG)"]
        large = phase1_times_ms(8_000_000)["Hybrid (our PRNG)"]
        assert 4 < large / small < 16
