"""Tests for RunReport and the measured-vs-predicted stage comparison."""

import json

import pytest

from repro import obs
from repro.gpusim.calibration import PipelineCosts
from repro.hybrid.scheduler import HybridScheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import STAGE_DEVICES, RunReport
from repro.obs.trace import Tracer


class _FakeTimeline:
    def __init__(self, busy):
        self._busy = busy

    def busy_time(self, device):
        return self._busy[device]


class _FakePrediction:
    def __init__(self, busy):
        self.timeline = _FakeTimeline(busy)
        self.total_ns = float(sum(busy.values()))


def _traced(*names):
    """A tracer holding one top-level span per name."""
    tracer = Tracer()
    for name in names:
        with tracer.span(name):
            pass
    return tracer


class TestRunReport:
    def test_merges_feed_stats_and_sections(self):
        report = RunReport(MetricsRegistry(), Tracer(), meta={"run": 1})
        report.add_feed_stats({"refills": 3, "words_consumed": 250})
        report.add_section("plan", {"batch_size": 100})
        out = report.to_dict()
        assert out["meta"] == {"run": 1}
        assert out["feed"]["refills"] == 3
        assert out["plan"] == {"batch_size": 100}

    def test_feed_stats_accepts_snapshotable(self):
        class Stats:
            def snapshot(self):
                return {"stalls": 2}

        report = RunReport(MetricsRegistry(), Tracer())
        report.add_feed_stats(Stats())
        assert report.feed == {"stalls": 2}

    def test_stage_breakdown_from_tracer(self):
        report = RunReport(MetricsRegistry(), _traced("feed", "feed", "generate"))
        breakdown = report.stage_breakdown()
        assert breakdown["feed"]["count"] == 2
        assert breakdown["generate"]["count"] == 1

    def test_stage_shares_normalized_over_common_stages(self):
        tracer = _traced("feed", "transfer", "generate")
        report = RunReport(MetricsRegistry(), tracer)
        report.add_prediction(_FakePrediction(
            {"CPU": 600.0, "PCIe": 100.0, "GPU": 300.0}
        ))
        shares = report.stage_shares()
        assert set(shares) == set(STAGE_DEVICES)
        assert shares["feed"]["predicted"] == pytest.approx(0.6)
        assert shares["transfer"]["predicted"] == pytest.approx(0.1)
        assert shares["generate"]["predicted"] == pytest.approx(0.3)
        for entry in shares.values():
            assert 0.0 <= entry["measured"] <= 1.0
        assert sum(e["measured"] for e in shares.values()) == pytest.approx(1.0)

    def test_shares_without_prediction_only_measured(self):
        report = RunReport(MetricsRegistry(), _traced("feed", "generate"))
        shares = report.stage_shares()
        assert set(shares) == {"feed", "generate"}
        assert all("predicted" not in e for e in shares.values())

    def test_non_pipeline_spans_excluded_from_shares(self):
        report = RunReport(MetricsRegistry(), _traced("feed", "plan", "predict"))
        assert set(report.stage_shares()) == {"feed"}

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        report = RunReport(registry, _traced("feed"))
        out = json.loads(report.to_json(indent=2))
        assert out["metrics"]["c_total"] == 1
        assert out["spans"] == 1

    def test_render_lists_stages_and_metrics(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total").inc(2)
        registry.histogram("repro_seconds", buckets=(1.0,)).observe(0.5)
        report = RunReport(registry, _traced("feed"))
        report.add_feed_stats({"refills": 1})
        text = report.render()
        assert "pipeline stages" in text
        assert "feed" in text
        assert "buffered feed" in text
        assert "repro_runs_total" in text
        assert "count=1 mean=0.5" in text

    def test_render_empty_is_graceful(self):
        report = RunReport(MetricsRegistry(), Tracer())
        assert "no observability data" in report.render()


class TestSchedulerReport:
    def test_report_carries_plan_feed_and_prediction(self):
        with obs.observed():
            with HybridScheduler(seed=3, max_threads=512) as sched:
                _values, plan, prediction = sched.run(2000, batch_size=50)
                report = sched.report(plan=plan, prediction=prediction)
        out = report.to_dict()
        assert out["plan"]["total_numbers"] == 2000
        assert out["feed"]["words_consumed"] > 0
        assert set(out["prediction"]["stage_busy_ns"]) == set(STAGE_DEVICES)
        assert out["metrics"]["repro_scheduler_runs_total"] == 1

    def test_measured_stage_ordering_matches_prediction(self):
        """Acceptance: the traced FEED/TRANSFER/GENERATE cost ordering of a
        real run reproduces the gpusim timeline's ordering for the same
        plan (the paper's Figure 4 structure: FEED dominates, GENERATE is
        close behind, TRANSFER is marginal).

        The functional NumPy platform is always "fully occupied", so the
        model's under-occupancy GPU penalty is disabled for the
        comparison (``full_occupancy_threads=1``).  The default cost
        model is calibrated to the paper's scalar glibc feed, so this
        case runs the reference FEED kernel (``blocked=False``); the
        blocked-kernel case below uses the matching
        ``PipelineCosts.blocked_feed`` calibration instead.
        """
        from repro.bitsource.glibc import GlibcRandom

        costs = PipelineCosts(full_occupancy_threads=1)
        with obs.observed():
            with HybridScheduler(
                seed=1,
                costs=costs,
                bit_source=GlibcRandom(1, blocked=False),
            ) as sched:
                _values, plan, prediction = sched.run(100_000, batch_size=10)
                report = sched.report(plan=plan, prediction=prediction)

        shares = report.stage_shares()
        assert set(shares) == {"feed", "transfer", "generate"}
        measured = sorted(
            shares, key=lambda s: shares[s]["measured"], reverse=True
        )
        predicted = sorted(
            shares, key=lambda s: shares[s]["predicted"], reverse=True
        )
        assert measured == predicted == ["feed", "generate", "transfer"]
        # Both columns agree FEED is the bottleneck of the hybrid scheme.
        assert shares["feed"]["measured"] > 0.4
        assert shares["feed"]["predicted"] > 0.4
        assert shares["transfer"]["measured"] < 0.2
        assert shares["transfer"]["predicted"] < 0.2

    def test_blocked_kernel_matches_blocked_calibration(self):
        """The default (blocked) FEED kernel against its own calibration
        entry: ``PipelineCosts.blocked_feed`` divides ``feed_ns`` by the
        measured blocked-kernel speedup, and measurement and prediction
        must then agree on the *inverted* structure -- GENERATE is the
        bottleneck and FEED is no longer dominant.  The exact ordering
        of the two marginal stages (FEED vs TRANSFER) is noise at this
        scale, so only the dominant stage and FEED's ceiling are pinned.
        """
        costs = PipelineCosts.blocked_feed(full_occupancy_threads=1)
        assert costs.feed_ns < PipelineCosts().feed_ns / 10
        with obs.observed():
            with HybridScheduler(seed=1, costs=costs) as sched:
                _values, plan, prediction = sched.run(100_000, batch_size=10)
                report = sched.report(plan=plan, prediction=prediction)

        shares = report.stage_shares()
        assert set(shares) == {"feed", "transfer", "generate"}
        top_measured = max(shares, key=lambda s: shares[s]["measured"])
        top_predicted = max(shares, key=lambda s: shares[s]["predicted"])
        assert top_measured == top_predicted == "generate"
        assert shares["generate"]["measured"] > 0.5
        assert shares["generate"]["predicted"] > 0.5
        assert shares["feed"]["measured"] < 0.4
        assert shares["feed"]["predicted"] < 0.4
