"""Seek correctness: O(log offset) jump-ahead vs. fresh replay.

The contract under test, at every layer, is the same sentence: after
``seek(offset)``, the stream continues exactly as a freshly seeded
instance would after generating (and discarding) ``offset`` words.

* feed level -- every seekable :class:`BitSource` (GlibcRandom blocked
  and scalar, AnsiCLcg, SplitMix64Source, RawCounterSource), including
  offsets that straddle the glibc ring/window boundaries;
* walker level -- :class:`AddressableExpanderPRNG` across the
  fixed-consumption policies x all four kernel variants (fused /
  reference walk x blocked / scalar feed), plus the chained
  :class:`ParallelExpanderPRNG`'s forward replay-seek for ``reject``;
* golden vectors -- hardcoded words at fixed offsets (several beyond
  2**32) so a regression in the jump-ahead linear algebra cannot hide
  behind a matching regression in the sequential path.
"""

import numpy as np
import pytest

from repro.bitsource.base import UnseekableSourceError
from repro.bitsource.counter import RawCounterSource, SplitMix64Source
from repro.bitsource.glibc import AnsiCLcg, GlibcRandom
from repro.bitsource.os_entropy import OsEntropySource
from repro.core.parallel import AddressableExpanderPRNG, ParallelExpanderPRNG
from repro.core.walk import FIXED_CONSUMPTION_POLICIES, POLICIES

# Offsets straddling every interesting boundary of the glibc kernel:
# the 31-word ring, the 310-output warmup, and the 128-window blocks.
BOUNDARY_OFFSETS = [0, 1, 2, 30, 31, 32, 61, 62, 103, 104, 310, 311,
                    1000, 4095, 4096, 4097]

#: Offsets far beyond anything replay could verify in test time.
HUGE_OFFSETS = [(1 << 32) + 5, (1 << 40) + 123, (1 << 48) + 7]


def _seekable_sources():
    return [
        ("glibc-blocked", lambda: GlibcRandom(12345, blocked=True)),
        ("glibc-scalar", lambda: GlibcRandom(12345, blocked=False)),
        ("ansi-c", lambda: AnsiCLcg(12345)),
        ("splitmix64", lambda: SplitMix64Source(12345)),
        ("raw-counter", lambda: RawCounterSource(12345)),
    ]


class TestFeedSeek:
    @pytest.mark.parametrize(
        "name,make", _seekable_sources(), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_seek_equals_fresh_replay(self, name, make):
        ref = make().words64(BOUNDARY_OFFSETS[-1] + 64)
        for offset in BOUNDARY_OFFSETS:
            src = make()
            src.seek(offset)
            np.testing.assert_array_equal(
                src.words64(64), ref[offset:offset + 64],
                err_msg=f"{name} seek({offset})",
            )

    @pytest.mark.parametrize(
        "name,make", _seekable_sources(), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_seek_backwards_and_rewind(self, name, make):
        """Offsets are absolute: backwards seeks and rewinds to 0 work."""
        ref = make().words64(128)
        src = make()
        src.words64(100)
        src.seek(17)
        np.testing.assert_array_equal(src.words64(30), ref[17:47])
        src.seek(0)
        np.testing.assert_array_equal(src.words64(128), ref)

    @pytest.mark.parametrize(
        "name,make", _seekable_sources(), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_huge_offsets_compose(self, name, make):
        """seek(big); read k  ==  seek(big + k): the only replay-free
        cross-check available past 2**32, and it exercises the matrix
        power at two different exponents."""
        for base in HUGE_OFFSETS:
            a = make()
            a.seek(base)
            run = a.words64(40)
            b = make()
            b.seek(base + 25)
            np.testing.assert_array_equal(
                b.words64(15), run[25:40], err_msg=f"{name} @ {base}"
            )

    def test_seekable_flags(self):
        for name, make in _seekable_sources():
            assert make().seekable, name
        assert not OsEntropySource().seekable

    def test_os_entropy_rejects_seek(self):
        with pytest.raises(UnseekableSourceError):
            OsEntropySource().seek(0)

    def test_negative_offset_rejected(self):
        for name, make in _seekable_sources():
            with pytest.raises(ValueError):
                make().seek(-1)

    def test_glibc_seek_raw_mixes_with_rand(self):
        """seek_raw targets raw 31-bit outputs, interleaving with rand()."""
        from repro.bitsource.glibc import _WARMUP

        ref_src = GlibcRandom(777)
        ref = [int(ref_src.rand()) for _ in range(500)]
        src = GlibcRandom(777)
        src.seek_raw(_WARMUP + 321)
        assert int(src.rand()) == ref[321]


# Golden words at fixed offsets: ``source.seek(offset); words64(1)``.
# Regenerate only for a deliberate, documented stream change.
GOLDEN_GLIBC_12345 = {
    0: 0x2DAB508ECCA28655,
    1: 0x364D9E761FB60984,
    31: 0x1E7E5545E8A03BC6,
    311: 0xF3E54BB2FCE9C0BE,
    4096: 0xC3C17548E95E70D2,
    (1 << 32) + 5: 0xBD368376D4253F68,
    (1 << 40) + 123: 0xBB62D289CE1F20A4,
    (1 << 48) + 7: 0x4D7FC5A59F84F20D,
}
GOLDEN_ANSI_12345 = {
    0: 0xC4E0959946D5421F,
    1: 0xD9A3ABD6906D2FE5,
    31: 0xBA67A3C4263E4AF7,
    311: 0xD2D837476EE19F9A,
    4096: 0x53E31935100349FF,
    (1 << 32) + 5: 0x4B5597AD0B0E8202,
    (1 << 40) + 123: 0x4347CEEE31B8E3B9,
    (1 << 48) + 7: 0x265BE5D7E9575BB7,
}
GOLDEN_SPLITMIX_12345 = {
    0: 0x22118258A9D111A0,
    1: 0x346EDCE5F713F8ED,
    31: 0xDF6F910A08F884F2,
    311: 0x2D5B8A73CCCE0029,
    4096: 0xA709F513500E653F,
    (1 << 32) + 5: 0x0DF4C3DC30735523,
    (1 << 40) + 123: 0x6D6A8353960AF3B9,
    (1 << 48) + 7: 0x7E191784542F3FEF,
}
# AddressableExpanderPRNG(num_threads=8, bit_source=GlibcRandom(9)):
# identical for 'mod' and 'lazy' because DEGREE == 7 makes both fold
# chunk 7 onto vertex-map 0 (7 - DEGREE == 0 and the lazy identity).
GOLDEN_BANK_LANES8_SEED9 = {
    0: 0x1D7F55C2CC5E68CF,
    1: 0xA4716B360B002191,
    31: 0x8630E5C4302F448E,
    311: 0x313F6782FD7C7AD7,
    4096: 0x71306FED920C19FD,
    (1 << 32) + 5: 0x8CA9D6A4425A3A2D,
    (1 << 40) + 123: 0x02A5E86959E80F4F,
    (1 << 48) + 7: 0xCB6EF215C46A09AB,
}


class TestGoldenOffsets:
    @pytest.mark.parametrize("make,golden", [
        (lambda: GlibcRandom(12345, blocked=True), GOLDEN_GLIBC_12345),
        (lambda: GlibcRandom(12345, blocked=False), GOLDEN_GLIBC_12345),
        (lambda: AnsiCLcg(12345), GOLDEN_ANSI_12345),
        (lambda: SplitMix64Source(12345), GOLDEN_SPLITMIX_12345),
    ], ids=["glibc-blocked", "glibc-scalar", "ansi-c", "splitmix64"])
    def test_feed_golden_offsets(self, make, golden):
        for offset, expected in golden.items():
            src = make()
            src.seek(offset)
            assert int(src.words64(1)[0]) == expected, f"offset {offset}"

    @pytest.mark.parametrize("policy", FIXED_CONSUMPTION_POLICIES)
    def test_bank_golden_offsets(self, policy):
        for offset, expected in GOLDEN_BANK_LANES8_SEED9.items():
            prng = AddressableExpanderPRNG(
                num_threads=8, bit_source=GlibcRandom(9), policy=policy
            )
            prng.seek(offset)
            assert int(prng.generate(1)[0]) == expected, f"offset {offset}"


class TestBankSeek:
    """seek == fresh replay across 3 policies x 4 kernel variants."""

    OFFSETS = [0, 1, 7, 8, 9, 63, 64, 65, 100, 255, 256, 300]

    @pytest.mark.parametrize("blocked", [True, False])
    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_seek_equals_fresh_replay(self, policy, fused, blocked):
        def make():
            cls = (
                ParallelExpanderPRNG if policy == "reject"
                else AddressableExpanderPRNG
            )
            return cls(
                num_threads=8,
                bit_source=GlibcRandom(42, blocked=blocked),
                policy=policy,
                fused=fused,
            )

        ref = make().generate(self.OFFSETS[-1] + 48)
        for offset in self.OFFSETS:
            prng = make()
            prng.seek(offset)
            np.testing.assert_array_equal(
                prng.generate(48), ref[offset:offset + 48],
                err_msg=f"policy={policy} fused={fused} blocked={blocked} "
                        f"seek({offset})",
            )

    @pytest.mark.parametrize("policy", FIXED_CONSUMPTION_POLICIES)
    @pytest.mark.parametrize("feed", [
        lambda: GlibcRandom(11), lambda: AnsiCLcg(11),
        lambda: SplitMix64Source(11),
    ], ids=["glibc", "ansi-c", "splitmix64"])
    def test_backwards_seek(self, policy, feed):
        """Addressable banks seek backwards in O(log offset): no replay."""
        make = lambda: AddressableExpanderPRNG(
            num_threads=8, bit_source=feed(), policy=policy
        )
        ref = make().generate(200)
        prng = make()
        prng.generate(150)
        prng.seek(13)
        np.testing.assert_array_equal(prng.generate(50), ref[13:63])
        prng.seek(0)
        np.testing.assert_array_equal(prng.generate(200), ref)

    def test_chained_seek_is_forward_only(self):
        prng = ParallelExpanderPRNG(
            num_threads=8, bit_source=GlibcRandom(1), policy="reject"
        )
        prng.generate(100)
        with pytest.raises(ValueError, match="AddressableExpanderPRNG"):
            prng.seek(10)

    def test_reject_policy_not_addressable(self):
        with pytest.raises(ValueError, match="fixed-consumption"):
            AddressableExpanderPRNG(
                num_threads=8, bit_source=GlibcRandom(1), policy="reject"
            )

    def test_tell_tracks_position(self):
        prng = AddressableExpanderPRNG(
            num_threads=8, bit_source=GlibcRandom(3)
        )
        assert prng.tell() == 0
        prng.generate(13)
        assert prng.tell() == 13
        prng.seek(1000)
        assert prng.tell() == 1000
        prng.generate(5)
        assert prng.tell() == 1005

    def test_unseekable_feed_generates_but_cannot_seek(self):
        """Sequential generation never seeks the feed; only seek() needs
        a seekable source (and the entropy fallback is exactly that
        trade: live randomness, no resume)."""
        prng = AddressableExpanderPRNG(
            num_threads=8, bit_source=OsEntropySource()
        )
        assert prng.generate(64).size == 64
        with pytest.raises(UnseekableSourceError):
            prng.seek(0)

    def test_split_fetch_invariance_after_seek(self):
        make = lambda: AddressableExpanderPRNG(
            num_threads=8, bit_source=GlibcRandom(5)
        )
        ref = make().generate(300)
        prng = make()
        prng.seek(117)
        parts = [prng.generate(n) for n in (1, 10, 53, 64, 55)]
        np.testing.assert_array_equal(
            np.concatenate(parts), ref[117:300]
        )

    def test_huge_offset_composes(self):
        """Same composition identity as the feeds, at the bank level."""
        base = (1 << 40) + 17
        make = lambda: AddressableExpanderPRNG(
            num_threads=8, bit_source=GlibcRandom(21)
        )
        a = make()
        a.seek(base)
        run = a.generate(40)
        b = make()
        b.seek(base + 25)
        np.testing.assert_array_equal(b.generate(15), run[25:40])


class TestFusedRounds:
    """Multi-round fusion: K rounds of an nt-lane bank run as one
    K*nt-lane walk must be bit-identical to strict per-round
    production (the serve-throughput tentpole's correctness core)."""

    @pytest.mark.parametrize("policy", sorted(FIXED_CONSUMPTION_POLICIES))
    def test_fused_equals_per_round(self, policy, monkeypatch):
        import repro.core.parallel as parallel_mod

        def bank():
            return AddressableExpanderPRNG(
                num_threads=8, bit_source=SplitMix64Source(5),
                walk_length=12, policy=policy,
            )

        fused = bank().generate(1000)
        # Forcing the per-launch lane budget down to the bank width
        # degenerates every launch to exactly one round.
        monkeypatch.setattr(parallel_mod, "FUSED_LAUNCH_LANES", 1)
        strict = bank().generate(1000)
        np.testing.assert_array_equal(fused, strict)

    def test_fused_split_fetch_and_seek(self):
        a = AddressableExpanderPRNG(
            num_threads=8, bit_source=SplitMix64Source(5)
        )
        b = AddressableExpanderPRNG(
            num_threads=8, bit_source=SplitMix64Source(5)
        )
        whole = a.generate(800)
        parts = np.concatenate(
            [b.generate(n) for n in (7, 493, 300)]
        )
        np.testing.assert_array_equal(whole, parts)
        b.seek(250)
        np.testing.assert_array_equal(b.generate(100), whole[250:350])
