"""Tests for the XORWOW (CURAND) implementation."""

import numpy as np
import pytest

from repro.baselines.xorwow import MARSAGLIA_INITIAL_STATE, Xorwow


def xorwow_reference_steps(n):
    """Independent pure-Python implementation of Marsaglia's xorwow."""
    x, y, z, w, v, d = MARSAGLIA_INITIAL_STATE
    out = []
    mask = 0xFFFFFFFF
    for _ in range(n):
        t = (x ^ (x >> 2)) & mask
        x, y, z, w = y, z, w, v
        v = ((v ^ (v << 4)) ^ (t ^ (t << 1))) & mask
        d = (d + 362437) & mask
        out.append((v + d) & mask)
    return out


class TestRecurrence:
    def test_matches_independent_reference(self):
        g = Xorwow(lanes=1, marsaglia_init=True)
        ours = [g.next_u32() for _ in range(500)]
        assert ours == xorwow_reference_steps(500)

    def test_marsaglia_init_requires_single_lane(self):
        with pytest.raises(ValueError, match="lanes == 1"):
            Xorwow(lanes=2, marsaglia_init=True)


class TestLanes:
    def test_lane_interleaving(self):
        """Multi-lane output is lane-major per round."""
        g = Xorwow(seed=3, lanes=4)
        block = g.u32_array(8)
        # Reconstruct: each round yields 4 outputs, rounds are consecutive.
        g2 = Xorwow(seed=3, lanes=4)
        r1 = g2._step()
        r2 = g2._step()
        assert np.array_equal(block, np.concatenate([r1, r2]))

    def test_lanes_are_distinct_streams(self):
        g = Xorwow(seed=3, lanes=8)
        block = g.u32_array(8 * 100).reshape(100, 8)
        for i in range(8):
            for j in range(i + 1, 8):
                assert not np.array_equal(block[:, i], block[:, j])

    def test_partial_round(self):
        g = Xorwow(seed=3, lanes=16)
        assert g.u32_array(5).size == 5

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            Xorwow(lanes=0)


class TestBehaviour:
    def test_deterministic(self):
        assert np.array_equal(
            Xorwow(seed=9, lanes=4).u32_array(100),
            Xorwow(seed=9, lanes=4).u32_array(100),
        )

    def test_reseed(self):
        g = Xorwow(seed=9, lanes=4)
        first = g.u32_array(10).copy()
        g.u32_array(1000)
        g.reseed(9)
        assert np.array_equal(g.u32_array(10), first)

    def test_seed_sensitivity(self):
        assert not np.array_equal(
            Xorwow(seed=1, lanes=2).u32_array(50),
            Xorwow(seed=2, lanes=2).u32_array(50),
        )

    def test_uniformity_sane(self):
        u = Xorwow(seed=5, lanes=32).uniform(100_000)
        assert abs(u.mean() - 0.5) < 0.005

    def test_is_on_demand(self):
        assert Xorwow(seed=1).on_demand is True
