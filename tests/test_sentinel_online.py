"""Tests for the sentinel's online detectors, verdict engine, and tap."""

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.sentinel import (
    SentinelConfig,
    StreamSentinel,
    Verdict,
    get_tap,
    install_tap,
    maybe_observe,
    tapped,
    uninstall_tap,
)
from repro.obs.sentinel import online


def _good_words(n, seed=7):
    """An i.i.d.-uniform uint64 stream the detectors must not flag."""
    return np.random.default_rng(seed).integers(
        0, 2**64, size=n, dtype=np.uint64
    )


class TestOnlineDetectors:
    def test_popcount_matches_python(self):
        words = _good_words(64)
        expected = sum(bin(int(w)).count("1") for w in words)
        assert online.popcount(words) == expected

    def test_monobit_zeros_is_condemned(self):
        assert online.monobit_pvalue(np.zeros(64, dtype=np.uint64)) < 1e-100

    def test_monobit_balanced_is_perfect(self):
        words = np.full(64, 0xAAAAAAAAAAAAAAAA, dtype=np.uint64)
        assert online.monobit_pvalue(words) == pytest.approx(1.0)

    def test_monobit_good_stream_passes(self):
        assert online.monobit_pvalue(_good_words(4096)) > 1e-4

    def test_runs_alternating_bits_is_condemned(self):
        # 0b0101... has the maximum possible number of runs.
        words = np.full(64, 0x5555555555555555, dtype=np.uint64)
        assert online.runs_pvalue(words) < 1e-100

    def test_runs_counts_word_boundary_transitions(self):
        # All-ones then all-zeros: one transition, V = 2, far below the
        # expected ~n/2 runs -- but the monobit precondition fails first
        # (pi is exactly 1/2 here, so the runs test does run).
        words = np.array([~np.uint64(0), np.uint64(0)], dtype=np.uint64)
        p = online.runs_pvalue(words)
        assert p is not None and p < 1e-6

    def test_runs_precondition_defers_to_monobit(self):
        assert online.runs_pvalue(np.zeros(64, dtype=np.uint64)) is None

    def test_runs_good_stream_passes(self):
        assert online.runs_pvalue(_good_words(4096)) > 1e-4

    def test_byte_chi2_constant_bytes_condemned(self):
        words = np.full(256, 0x4141414141414141, dtype=np.uint64)
        assert online.byte_chi2_pvalue(words) < 1e-100

    def test_byte_chi2_good_stream_passes(self):
        assert online.byte_chi2_pvalue(_good_words(4096)) > 1e-4

    def test_entropy_rate_bounds(self):
        assert online.entropy_rate(np.zeros(64, dtype=np.uint64)) == 0.0
        rate = online.entropy_rate(_good_words(4096))
        assert 7.9 < rate <= 8.0

    def test_ks_drift_needs_samples(self):
        assert online.ks_drift_pvalue([0.5] * 5) is None

    def test_ks_drift_flags_collapsed_uniforms(self):
        assert online.ks_drift_pvalue([0.5] * 200) < 1e-12

    def test_ks_drift_passes_uniforms(self):
        u = np.random.default_rng(3).random(200)
        assert online.ks_drift_pvalue(u) > 1e-4


class TestSentinelConfig:
    def test_defaults_valid(self):
        cfg = SentinelConfig()
        assert cfg.window_words == 4096 and cfg.sample_every == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_words": 32},
            {"sample_every": 0},
            {"reservoir": -1},
            {"ks_every": 0},
            {"alpha_budget": 0.0},
            {"alpha_budget": 1.5},
            {"p_bad": 0.0},
            {"bad_after": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SentinelConfig(**kwargs)


class TestStreamSentinel:
    def test_zeros_go_stat_bad_within_one_window(self):
        s = StreamSentinel(SentinelConfig(window_words=256, sample_every=1))
        s.observe(np.zeros(256, dtype=np.uint64))
        assert s.verdict is Verdict.STAT_BAD
        assert s.health_name() == "FAILED"

    def test_good_stream_stays_ok(self):
        s = StreamSentinel(SentinelConfig(window_words=1024, sample_every=1))
        rng = np.random.default_rng(11)
        for _ in range(16):
            s.observe(rng.integers(0, 2**64, size=2048, dtype=np.uint64))
        assert s.verdict is Verdict.STAT_OK
        state = s.state()
        assert state["windows"] == 32 and state["failures"] == 0

    def test_observe_is_non_consuming(self):
        s = StreamSentinel(SentinelConfig(window_words=64, sample_every=1))
        arr = _good_words(256)
        before = arr.copy()
        s.observe(arr)
        np.testing.assert_array_equal(arr, before)

    def test_fetch_sizing_cannot_change_what_is_sampled(self):
        """Slicing invariance: the same stream in different chunkings
        yields the identical sentinel state (stride phase persists)."""
        stream = _good_words(6000, seed=5)

        def run(chunks):
            s = StreamSentinel(
                SentinelConfig(window_words=256, sample_every=4, seed=9)
            )
            pos = 0
            for c in chunks:
                s.observe(stream[pos : pos + c])
                pos += c
            return s.state()

        whole = run([6000])
        sliced = run([1, 7, 250, 1024, 3, 4715])
        assert whole == sliced
        assert whole["words_seen"] == 6000
        assert whole["words_sampled"] == 1500

    def test_verdict_is_sticky_until_reset(self):
        s = StreamSentinel(SentinelConfig(window_words=128, sample_every=1))
        s.observe(np.zeros(128, dtype=np.uint64))
        assert s.verdict is Verdict.STAT_BAD
        for _ in range(8):
            s.observe(_good_words(128))
        assert s.verdict is Verdict.STAT_BAD  # sticky
        s.reset()
        assert s.verdict is Verdict.STAT_OK
        assert s.state()["windows"] == 0

    def test_ignores_non_uint64_and_empty(self):
        s = StreamSentinel(SentinelConfig(window_words=64))
        s.observe(None)
        s.observe(np.empty(0, dtype=np.uint64))
        s.observe(np.zeros(64, dtype=np.float64))
        assert s.state()["words_seen"] == 0

    def test_alpha_schedule_sums_to_budget(self):
        s = StreamSentinel(SentinelConfig(alpha_budget=1e-4))
        total = sum(s._alpha(k) for k in range(100_000))
        assert total < 1e-4
        assert total > 0.9e-4

    def test_metrics_exported_when_enabled(self):
        registry = MetricsRegistry()
        old = obs_metrics.get_registry()
        obs_metrics.set_registry(registry)
        try:
            s = StreamSentinel(
                SentinelConfig(window_words=128, sample_every=1)
            )
            s.observe(np.zeros(256, dtype=np.uint64))
        finally:
            obs_metrics.set_registry(old if old.enabled else None)
        snap = registry.snapshot()
        assert snap["repro_sentinel_windows_total"] == 2
        assert snap["repro_sentinel_failures_total"] == 2
        assert snap["repro_sentinel_verdict"] == 2.0

    def test_state_is_json_ready(self):
        import json

        s = StreamSentinel(SentinelConfig(window_words=128, sample_every=1))
        s.observe(_good_words(512))
        doc = json.loads(json.dumps(s.state()))
        assert doc["verdict"] == "STAT_OK"
        assert set(doc["last_window"]) >= {"monobit", "byte_chi2"}

    def test_summary_is_flat(self):
        s = StreamSentinel(SentinelConfig(window_words=128, sample_every=1))
        s.observe(_good_words(256))
        summary = s.summary()
        assert summary["verdict"] == "STAT_OK"
        assert all(
            not isinstance(v, (dict, list)) for v in summary.values()
        )
        assert "p_monobit" in summary


class TestTap:
    def test_default_is_uninstalled_and_free(self):
        uninstall_tap()
        assert get_tap() is None
        maybe_observe(np.zeros(4, dtype=np.uint64))  # no-op, no error

    def test_install_and_uninstall(self):
        s = StreamSentinel(SentinelConfig(window_words=64, sample_every=1))
        install_tap(s)
        try:
            assert get_tap() is s
            maybe_observe(_good_words(32))
            assert s.state()["words_seen"] == 32
        finally:
            uninstall_tap()
        assert get_tap() is None

    def test_tapped_restores_previous(self):
        outer = StreamSentinel(SentinelConfig(window_words=64))
        inner = StreamSentinel(SentinelConfig(window_words=64))
        install_tap(outer)
        try:
            with tapped(inner) as active:
                assert active is inner and get_tap() is inner
            assert get_tap() is outer
        finally:
            uninstall_tap()

    def test_generate_into_feeds_the_tap(self):
        from repro.core.parallel import ParallelExpanderPRNG

        s = StreamSentinel(SentinelConfig(window_words=64, sample_every=1))
        prng = ParallelExpanderPRNG(num_threads=32, seed=3)
        with tapped(s):
            prng.generate(100)
        assert s.state()["words_seen"] == 100

    def test_tap_does_not_perturb_the_stream(self):
        """The non-consuming guarantee: values with a tap installed are
        bit-identical to values without one."""
        from repro.core.parallel import ParallelExpanderPRNG

        plain = ParallelExpanderPRNG(num_threads=64, seed=12).generate(500)
        s = StreamSentinel(SentinelConfig(window_words=64, sample_every=1))
        with tapped(s):
            watched = ParallelExpanderPRNG(
                num_threads=64, seed=12
            ).generate(500)
        np.testing.assert_array_equal(plain, watched)
        assert s.state()["words_seen"] >= 500
