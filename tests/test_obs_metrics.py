"""Tests for the metrics registry (counters, gauges, histograms)."""

import math
import threading

import pytest

from repro import obs
from repro.obs import metrics
from repro.obs.export import prometheus_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("events_total")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("events_total").inc(-1)

    def test_thread_safe(self):
        c = Counter("events_total")

        def worker():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0


class TestHistogram:
    def test_bucketing_is_cumulative(self):
        h = Histogram("latency", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 0.9, 3.0, 7.0, 100.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(111.4)
        cum = dict(h.cumulative())
        assert cum[1.0] == 2
        assert cum[5.0] == 3
        assert cum[10.0] == 4
        assert cum[math.inf] == 5

    def test_boundary_value_falls_in_bucket(self):
        # Prometheus buckets are upper-inclusive (le = "less or equal").
        h = Histogram("latency", buckets=(1.0,))
        h.observe(1.0)
        assert dict(h.cumulative())[1.0] == 1

    def test_nan_ignored(self):
        h = Histogram("latency", buckets=(1.0,))
        h.observe(float("nan"))
        assert h.count == 0

    def test_empty_buckets_fall_back_to_defaults(self):
        h = Histogram("latency", buckets=())
        assert h.buckets == metrics.DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(TypeError):
            reg.gauge("a_total")
        with pytest.raises(TypeError):
            reg.histogram("a_total")

    def test_snapshot_is_json_friendly(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c_total"] == 3
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"][-1][0] == "+Inf"

    def test_collect_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.counter("a_total")
        assert list(reg.collect()) == ["a_total", "z_total"]


class TestNullRegistry:
    def test_shares_one_noop_instrument(self):
        reg = NullRegistry()
        c = reg.counter("anything")
        assert c is reg.gauge("other") is reg.histogram("third")
        c.inc()
        c.set(5)
        c.observe(1.0)
        assert c.value == 0
        assert not reg.enabled

    def test_default_registry_is_noop(self):
        reg = metrics.get_registry()
        assert not reg.enabled
        assert not metrics.metrics_enabled()
        # Module-level helpers route to the no-op without registering.
        metrics.counter("repro_test_total").inc()
        assert "repro_test_total" not in reg.collect()


class TestEnableDisable:
    def test_enable_then_disable_restores_noop(self):
        reg = metrics.enable()
        try:
            assert metrics.metrics_enabled()
            metrics.counter("repro_test_total").inc(2)
            assert reg.counter("repro_test_total").value == 2
        finally:
            metrics.disable()
        assert not metrics.metrics_enabled()

    def test_observed_context_restores_previous_state(self):
        assert not metrics.metrics_enabled()
        with obs.observed() as (reg, _tracer):
            assert metrics.metrics_enabled()
            assert metrics.get_registry() is reg
        assert not metrics.metrics_enabled()

    def test_observed_survives_exceptions(self):
        with pytest.raises(RuntimeError):
            with obs.observed():
                raise RuntimeError("boom")
        assert not metrics.metrics_enabled()
        assert not obs.tracing_enabled()


class TestPrometheusText:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("c_total", help="things").inc(2)
        reg.gauge("g").set(3)
        reg.histogram("h", buckets=(0.5, 1.0)).observe(0.7)
        text = prometheus_text(reg)
        assert "# HELP c_total things" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 2" in text
        assert "# TYPE g gauge" in text
        assert "g 3" in text
        assert "# TYPE h histogram" in text
        assert 'h_bucket{le="0.5"} 0' in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 0.7" in text
        assert "h_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
