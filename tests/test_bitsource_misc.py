"""Tests for counter/NumPy/OS bit sources and the shared BitSource API."""

import numpy as np
import pytest

from repro.bitsource import (
    NumpyBitSource,
    OsEntropySource,
    RawCounterSource,
    SplitMix64Source,
    splitmix64,
)


class TestSplitMix64:
    def test_reference_values(self):
        """Known answers from the public-domain splitmix64.c, seed 0."""
        src = SplitMix64Source(0)
        got = [int(v) for v in src.words64(3)]
        assert got == [
            0xE220A8397B1DCDAF,
            0x6E789E6AA1B965F4,
            0x06C45D188009454F,
        ]

    def test_hash_equals_first_stream_output(self):
        """splitmix64(x) is the first draw of a stream seeded at x."""
        x = 0xDEADBEEFCAFEF00D
        assert int(splitmix64(np.uint64(x))[()]) == int(
            SplitMix64Source(x).words64(1)[0]
        )

    def test_sequence_continuation(self):
        a = SplitMix64Source(0)
        w1 = a.words64(3)
        b = SplitMix64Source(0)
        w2 = np.concatenate([b.words64(1), b.words64(2)])
        assert np.array_equal(w1, w2)

    def test_reseed(self):
        s = SplitMix64Source(5)
        first = s.words64(1)[0]
        s.words64(100)
        s.reseed(5)
        assert s.words64(1)[0] == first

    def test_distinct_seeds(self):
        assert SplitMix64Source(1).words64(1)[0] != SplitMix64Source(2).words64(1)[0]

    def test_bit_balance(self):
        bits = SplitMix64Source(3).bits(100_000)
        assert abs(bits.mean() - 0.5) < 0.01


class TestRawCounter:
    def test_emits_counter(self):
        s = RawCounterSource(10)
        assert list(s.words64(3)) == [11, 12, 13]

    def test_is_terrible_but_deterministic(self):
        a, b = RawCounterSource(0), RawCounterSource(0)
        assert np.array_equal(a.words64(10), b.words64(10))


class TestNumpySource:
    def test_deterministic(self):
        assert np.array_equal(
            NumpyBitSource(9).words64(20), NumpyBitSource(9).words64(20)
        )

    def test_reseed(self):
        s = NumpyBitSource(4)
        w = s.words64(5).copy()
        s.words64(50)
        s.reseed(4)
        assert np.array_equal(s.words64(5), w)


class TestOsEntropy:
    def test_produces_words(self):
        s = OsEntropySource()
        w = s.words64(16)
        assert w.dtype == np.uint64 and w.size == 16

    def test_zero_words(self):
        assert OsEntropySource().words64(0).size == 0

    def test_calls_differ(self):
        s = OsEntropySource()
        # 128 bits of OS entropy colliding is impossible in practice.
        assert not np.array_equal(s.words64(2), s.words64(2))

    def test_reseed_is_noop(self):
        OsEntropySource().reseed(1)  # must not raise


class TestSharedDerivedApi:
    @pytest.mark.parametrize(
        "source", [SplitMix64Source(1), RawCounterSource(1), NumpyBitSource(1)]
    )
    def test_bits_length_and_values(self, source):
        bits = source.bits(130)
        assert bits.size == 130
        assert set(np.unique(bits)) <= {0, 1}

    def test_chunks3_matches_manual_slicing(self):
        src = SplitMix64Source(8)
        chunks = src.chunks3(45)
        src2 = SplitMix64Source(8)
        words = src2.words64(3)
        manual = []
        for w in words:
            for i in range(21):
                manual.append((int(w) >> (3 * i)) & 7)
        assert list(chunks) == manual[:45]

    def test_zero_chunks(self):
        assert SplitMix64Source(1).chunks3(0).size == 0

    def test_uniform_bounds(self):
        u = SplitMix64Source(2).uniform(500)
        assert (u >= 0).all() and (u < 1).all()
