"""Failure-path tests for the multicore variant.

Everything a worker can do wrong -- raise, wedge, die twice -- must
surface as a diagnosable :class:`WorkerFailedError` in the caller,
never a hang, a bare pool traceback, or a silently short stream.

The bit-source factories live at module level so they pickle across
the process boundary (fork or spawn).
"""

import functools
import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.bitsource.counter import SplitMix64Source
from repro.hybrid.multiproc import multicore_generate
from repro.resilience.errors import WorkerFailedError


class _Exploding(SplitMix64Source):
    """Every words64 call raises -- a worker that crashes immediately."""

    def words64(self, n):
        raise RuntimeError("injected worker crash")


class _Wedged(SplitMix64Source):
    """Never returns -- a worker stuck on a dead device or lock."""

    def words64(self, n):
        time.sleep(60)
        return super().words64(n)


class _FailsOnce(SplitMix64Source):
    """Raises until a marker file exists -- a transient fault."""

    def __init__(self, seed, marker):
        super().__init__(seed)
        self._marker = marker

    def words64(self, n):
        if not os.path.exists(self._marker):
            with open(self._marker, "w"):
                pass
            raise RuntimeError("transient fault")
        return super().words64(n)


def _fails_once_factory(marker, seed):
    return _FailsOnce(seed, marker)


class TestWorkerCrash:
    def test_crash_raises_worker_failed_with_diagnosis(self):
        with pytest.raises(WorkerFailedError) as exc_info:
            multicore_generate(200, workers=2, seed=1, lanes=64,
                               bit_source_factory=_Exploding)
        err = exc_info.value
        assert err.worker_index == 0
        assert err.attempts == 2  # initial try + the one retry
        assert "injected worker crash" in str(err)
        assert "no partial results" in str(err)

    def test_retries_zero_fails_on_first_attempt(self):
        with pytest.raises(WorkerFailedError) as exc_info:
            multicore_generate(200, workers=2, seed=1, lanes=64,
                               retries=0, bit_source_factory=_Exploding)
        assert exc_info.value.attempts == 1

    def test_inline_worker_crash_same_error_shape(self):
        with pytest.raises(WorkerFailedError) as exc_info:
            multicore_generate(200, workers=1, seed=1, lanes=64,
                               bit_source_factory=_Exploding)
        err = exc_info.value
        assert err.worker_index == 0
        assert err.attempts == 2
        assert isinstance(err.cause, RuntimeError)

    def test_failure_metric_counted(self):
        with obs.observed() as (registry, _):
            with pytest.raises(WorkerFailedError):
                multicore_generate(200, workers=1, seed=1, lanes=64,
                                   bit_source_factory=_Exploding)
        assert registry.counter("repro_worker_failures_total").value == 1
        assert registry.counter("repro_worker_retries_total").value == 1


class TestRetrySuccess:
    def test_transient_fault_retried_to_success(self, tmp_path):
        factory = functools.partial(
            _fails_once_factory, str(tmp_path / "marker"))
        with obs.observed() as (registry, _):
            out = multicore_generate(400, workers=2, seed=3, lanes=64,
                                     bit_source_factory=factory)
        # After the marker exists _FailsOnce is a plain SplitMix64Source,
        # so the retried run produces the default stream, full length.
        assert np.array_equal(
            out, multicore_generate(400, workers=2, seed=3, lanes=64))
        assert registry.counter("repro_worker_retries_total").value >= 1
        assert registry.counter("repro_worker_failures_total").value == 0

    def test_inline_transient_fault_retried(self, tmp_path):
        factory = functools.partial(
            _fails_once_factory, str(tmp_path / "marker"))
        out = multicore_generate(200, workers=1, seed=3, lanes=64,
                                 bit_source_factory=factory)
        assert np.array_equal(
            out, multicore_generate(200, workers=1, seed=3, lanes=64))


class TestTimeout:
    def test_wedged_worker_times_out_not_hangs(self):
        start = time.monotonic()
        with pytest.raises(WorkerFailedError, match="timed out"):
            multicore_generate(200, workers=2, seed=1, lanes=64,
                               timeout=1.0, bit_source_factory=_Wedged)
        # Bounded: ~the timeout, nowhere near the worker's 60s sleep.
        assert time.monotonic() - start < 30.0

    def test_timeout_is_not_retried(self):
        # A wedged worker would just wedge again; attempts stays 1.
        with pytest.raises(WorkerFailedError) as exc_info:
            multicore_generate(200, workers=2, seed=1, lanes=64,
                               timeout=1.0, retries=3,
                               bit_source_factory=_Wedged)
        assert exc_info.value.attempts == 1


class TestCallerPool:
    def test_callers_pool_survives_worker_failure(self):
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(processes=2) as pool:
            ok_before = multicore_generate(200, workers=2, seed=1,
                                           lanes=64, pool=pool)
            with pytest.raises(WorkerFailedError):
                multicore_generate(200, workers=2, seed=1, lanes=64,
                                   pool=pool, bit_source_factory=_Exploding)
            # The pool was not terminated on our behalf: it still serves.
            ok_after = multicore_generate(200, workers=2, seed=1,
                                          lanes=64, pool=pool)
        assert np.array_equal(ok_before, ok_after)


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            multicore_generate(10, workers=2, retries=-1)
