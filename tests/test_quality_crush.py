"""Tests for the Crush batteries and their classical tests."""

import math

import numpy as np
import pytest

from repro.baselines.base import PRNG
from repro.baselines.lcg import AnsiLcgPRNG
from repro.baselines.mt19937 import MT19937
from repro.quality.crush import (
    BATTERY_NAMES,
    autocorrelation_test,
    collision_test,
    coupon_collector_test,
    gap_test,
    hamming_indep_test,
    hamming_weight_test,
    longest_run_test,
    max_of_t_test,
    poker_test,
    random_walk_test,
    run_battery,
    run_smallcrush,
    serial_pairs_test,
    weight_distrib_test,
)
from repro.quality.crush.classic import _coupon_probs, _stirling2


def GOOD():
    return MT19937(777)


class BiasedBitsPRNG(PRNG):
    """60/40 biased bits: flunks bit-level tests, not much else."""

    name = "biased"

    def __init__(self):
        self._rng = np.random.Generator(np.random.PCG64(9))

    def reseed(self, seed):
        pass

    def u32_array(self, n):
        bits = (self._rng.random((n, 32)) < 0.53).astype(np.uint32)
        out = np.zeros(n, dtype=np.uint32)
        for j in range(32):
            out = (out << np.uint32(1)) | bits[:, j]
        return out


class TestClassicTests:
    def test_collision_good(self):
        assert collision_test(GOOD()).passed

    def test_collision_constant_fails(self):
        class Dup(PRNG):
            name = "dup"

            def reseed(self, seed):
                pass

            def u32_array(self, n):
                return np.zeros(n, dtype=np.uint32)

        assert not collision_test(Dup()).passed

    def test_gap_good(self):
        assert gap_test(GOOD(), n=400_000).passed

    def test_gap_interval_validation(self):
        with pytest.raises(ValueError):
            gap_test(GOOD(), alpha=0.5, beta=0.5)

    def test_coupon_good(self):
        assert coupon_collector_test(GOOD(), n_segments=20_000).passed

    def test_coupon_probs_sum(self):
        probs = np.asarray(_coupon_probs(5, 200))
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)

    def test_coupon_probs_minimum_length(self):
        probs = _coupon_probs(5, 20)
        # Impossible to finish in fewer than d draws.
        assert all(p == 0 for p in probs[:4])
        assert probs[4] == pytest.approx(math.factorial(5) / 5**5)

    def test_stirling_known(self):
        assert _stirling2(5, 3) == 25
        assert _stirling2(4, 4) == 1
        assert _stirling2(4, 0) == 0

    def test_poker_good(self):
        assert poker_test(GOOD(), n_hands=60_000).passed

    def test_maxoft_good(self):
        assert max_of_t_test(GOOD(), n_groups=40_000).passed

    def test_weight_distrib_good(self):
        assert weight_distrib_test(GOOD(), n_blocks=6_000).passed

    def test_hamming_weight_good_vs_biased(self):
        assert hamming_weight_test(GOOD(), n_words=150_000).passed
        assert not hamming_weight_test(BiasedBitsPRNG(), n_words=150_000).passed

    def test_hamming_indep_good(self):
        assert hamming_indep_test(GOOD(), n_words=150_000).passed

    def test_random_walk_good_vs_biased(self):
        assert random_walk_test(GOOD(), n_walks=15_000).passed
        assert not random_walk_test(BiasedBitsPRNG(), n_walks=15_000).passed

    def test_serial_pairs_good(self):
        assert serial_pairs_test(GOOD(), n_pairs=500_000).passed

    def test_autocorrelation_good(self):
        assert autocorrelation_test(GOOD(), n_bits=1_000_000).passed

    def test_autocorrelation_periodic_fails(self):
        class Periodic(PRNG):
            name = "periodic"

            def reseed(self, seed):
                pass

            def u32_array(self, n):
                return np.full(n, 0xAAAAAAAA, dtype=np.uint32)

        assert not autocorrelation_test(Periodic(), n_bits=500_000).passed

    def test_longest_run_good_vs_biased(self):
        assert longest_run_test(GOOD(), n_blocks=20_000).passed
        assert not longest_run_test(BiasedBitsPRNG(), n_blocks=20_000).passed


class TestBatteries:
    def test_names(self):
        assert BATTERY_NAMES == ("SmallCrush", "Crush", "BigCrush")

    def test_each_battery_has_15(self):
        for name in BATTERY_NAMES:
            res = run_battery(name, GOOD(), scale=0.05)
            assert res.num_tests == 15, name

    def test_good_generator_passes_smallcrush(self):
        res = run_smallcrush(GOOD(), scale=0.5)
        assert res.num_passed >= 14

    def test_weak_lcg_fails_smallcrush(self):
        res = run_smallcrush(AnsiLcgPRNG(1), scale=0.5)
        assert res.num_passed <= 11

    def test_unknown_battery(self):
        with pytest.raises(KeyError):
            run_battery("MegaCrush", GOOD())

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            run_battery("SmallCrush", GOOD(), scale=-1)

    def test_progress_callback(self):
        seen = []
        run_battery("SmallCrush", GOOD(), scale=0.05, progress=seen.append)
        assert len(seen) == 15
