"""Stream-exactness tests for the ``repro.dist`` variate subsystem.

The load-bearing property: a variate stream is a pure function of the
underlying word stream, so (a) fetch sizing is invisible
(``normal(4); normal(4) == normal(8)`` bitwise) and (b) any kernel
variant producing byte-identical words produces byte-identical
variates.
"""

import numpy as np
import pytest

from repro.baselines.mt19937 import MT19937
from repro.bitsource.glibc import GlibcRandom
from repro.core.parallel import ParallelExpanderPRNG
from repro.dist import SERVE_DISTRIBUTIONS, DistStream
from repro.dist import tables as zt
from repro.dist import transforms as tr


def words(seed=31415):
    """A cheap deterministic word source for sampler-logic tests."""
    return MT19937(seed).u64_array


#: (label, sampler factory) -- sampler(ds, n) -> ndarray, covering every
#: public sampler including all three normal methods.
SAMPLERS = [
    ("uniform01", lambda ds, n: ds.uniform01(n)),
    ("normal-ziggurat", lambda ds, n: ds.normal(n)),
    ("normal-polar", lambda ds, n: ds.normal(n, method="polar")),
    ("normal-boxmuller", lambda ds, n: ds.normal(n, method="boxmuller")),
    ("exponential", lambda ds, n: ds.exponential(n, rate=2.0)),
    ("integers-small", lambda ds, n: ds.integers(n, 0, 1000)),
    ("integers-signed", lambda ds, n: ds.integers(n, -7, 9)),
    ("integers-pow2", lambda ds, n: ds.integers(n, 0, 1 << 32)),
    ("integers-u64", lambda ds, n: ds.integers(n, 2**63, 2**64)),
]

SPLITS = [1, 7, 2, 30, 24]  # sums to 64


def _bits(a: np.ndarray) -> np.ndarray:
    return a.view(np.uint64)


class TestFetchSplitInvariance:
    @pytest.mark.parametrize("label,sample", SAMPLERS,
                             ids=[s[0] for s in SAMPLERS])
    def test_chunked_equals_bulk(self, label, sample):
        bulk = sample(DistStream(words()), sum(SPLITS))
        ds = DistStream(words())
        chunked = np.concatenate([sample(ds, k) for k in SPLITS])
        np.testing.assert_array_equal(_bits(chunked), _bits(bulk))

    def test_single_variate_calls(self):
        """The degenerate split: 64 calls of size 1."""
        bulk = DistStream(words()).normal(64)
        ds = DistStream(words())
        ones = np.concatenate([ds.normal(1) for _ in range(64)])
        np.testing.assert_array_equal(_bits(ones), _bits(bulk))

    def test_interleaved_params_share_one_standard_stream(self):
        """(mean, std) scaling happens outside the carry, so mixed
        parameterizations of one stream stay exact."""
        base = DistStream(words()).normal(6, method="polar")
        ds = DistStream(words())
        a = ds.normal(3, mean=5.0, std=2.0, method="polar")
        b = ds.normal(3, method="polar")
        # Undoing the affine map is float-rounded, so approx there --
        # but the *unscaled* continuation must stay bit-exact.
        np.testing.assert_allclose((a - 5.0) / 2.0, base[:3], rtol=1e-15)
        np.testing.assert_array_equal(_bits(b), _bits(base[3:]))


class TestCarry:
    def test_zero_carry_samplers(self):
        """Every serve-facing sampler leaves no buffered variates, for
        any request size -- the clean-resume-boundary property."""
        ds = DistStream(words())
        for n in (1, 7, 64, 129):
            ds.uniform01(n)
            ds.normal(n)
            ds.exponential(n)
            ds.integers(n, 0, 1000)
            assert all(
                ds.carry_size(k) == 0 for k in list(ds._carry)
            ), f"carry after size-{n} calls"

    def test_pair_emitters_buffer_at_most_one(self):
        ds = DistStream(words())
        ds.normal(3, method="boxmuller")
        assert ds.carry_size(("normal", "boxmuller")) == 1
        ds.normal(1, method="boxmuller")  # consumes the carry, draws none
        assert ds.carry_size(("normal", "boxmuller")) == 0

    def test_methods_have_independent_carries(self):
        ds = DistStream(words())
        ds.normal(1, method="boxmuller")
        ds.normal(2, method="polar")
        assert ds.carry_size(("normal", "boxmuller")) == 1
        assert ds.carry_size(("normal", "ziggurat")) == 0

    def test_reset_carry(self):
        ds = DistStream(words())
        ds.normal(1, method="boxmuller")
        ds.reset_carry()
        assert ds.carry_size(("normal", "boxmuller")) == 0

    def test_degenerate_source_raises_instead_of_spinning(self):
        # Constant-zero words map to (-1, -1) in the polar square:
        # s = 2 >= 1 rejects every attempt, forever.
        ds = DistStream(lambda n: np.zeros(n, dtype=np.uint64))
        with pytest.raises(RuntimeError, match="no progress|degenerate"):
            ds.normal(1, method="polar")


def _backend_params():
    from repro.backend import available_backends, backend_names

    avail = available_backends()
    return [
        pytest.param(
            name,
            marks=() if avail.get(name) else pytest.mark.skip(
                reason=f"backend {name!r} not available here"
            ),
        )
        for name in backend_names()
    ]


@pytest.mark.parametrize("backend", _backend_params())
class TestKernelVariantByteIdentity:
    """blocked/scalar feed x fused/unfused walk: same words, same
    variates, bit for bit -- on every available array backend.

    Variants are compared *within* one backend: the word stream is
    backend-invariant by the golden suite, and this class pins that the
    four kernel variants agree with each other wherever they run.
    """

    @pytest.fixture
    def variant_streams(self, backend):
        def make(blocked, fused):
            return DistStream(ParallelExpanderPRNG(
                num_threads=16,
                bit_source=GlibcRandom(99, blocked=blocked),
                fused=fused,
                backend=backend,
            ))
        return [make(b, f) for b in (True, False) for f in (True, False)]

    def test_normal_identical(self, variant_streams, backend):
        outs = [ds.normal(513) for ds in variant_streams]
        for other in outs[1:]:
            np.testing.assert_array_equal(_bits(outs[0]), _bits(other))

    def test_integers_identical(self, variant_streams, backend):
        outs = [ds.integers(257, -50, 1000) for ds in variant_streams]
        for other in outs[1:]:
            np.testing.assert_array_equal(outs[0], other)


class TestIntoVariants:
    def test_parity_with_allocating_calls(self):
        pairs = [
            (lambda d, o: d.uniform01_into(o), lambda d, n: d.uniform01(n),
             np.float64),
            (lambda d, o: d.normal_into(o, mean=1.0, std=3.0),
             lambda d, n: d.normal(n, mean=1.0, std=3.0), np.float64),
            (lambda d, o: d.exponential_into(o, rate=0.5),
             lambda d, n: d.exponential(n, rate=0.5), np.float64),
            (lambda d, o: d.integers_into(o, -10, 10),
             lambda d, n: d.integers(n, -10, 10), np.int64),
        ]
        for into, alloc, dtype in pairs:
            expect = alloc(DistStream(words()), 100)
            out = np.empty(100, dtype=dtype)
            got = into(DistStream(words()), out)
            assert got is out
            np.testing.assert_array_equal(_bits(out), _bits(expect))

    def test_validation(self):
        ds = DistStream(words())
        with pytest.raises(TypeError):
            ds.uniform01_into([0.0] * 4)
        with pytest.raises(TypeError):
            ds.normal_into(np.empty(4, dtype=np.float32))
        with pytest.raises(ValueError):
            ds.uniform01_into(np.empty((2, 2), dtype=np.float64))
        with pytest.raises(ValueError):
            ds.uniform01_into(np.empty(8, dtype=np.float64)[::2])
        ro = np.empty(4, dtype=np.float64)
        ro.flags.writeable = False
        with pytest.raises(ValueError):
            ds.uniform01_into(ro)
        with pytest.raises(TypeError):
            # uint64 range demands a uint64 out buffer
            ds.integers_into(np.empty(4, dtype=np.int64), 2**63, 2**64)

    def test_empty_out_is_a_noop(self):
        ds = DistStream(words())
        ds.uniform01_into(np.empty(0, dtype=np.float64))
        assert ds.words_consumed == 0


class TestIntegers:
    def test_dtype_rules(self):
        ds = DistStream(words())
        assert ds.integers(4, 0, 10).dtype == np.int64
        assert ds.integers(4, -(2**63), 2**63).dtype == np.int64
        assert ds.integers(4, 2**63, 2**64).dtype == np.uint64
        assert ds.integers(4, 0, 2**64).dtype == np.uint64

    def test_rejected_ranges(self):
        ds = DistStream(words())
        with pytest.raises(ValueError):
            ds.integers(4, 5, 5)
        with pytest.raises(ValueError):
            ds.integers(4, -1, 2**64)  # > 2**64 values
        with pytest.raises(ValueError):
            ds.integers(4, -1, 2**63 + 1)  # fits neither dtype

    def test_bounds_hold(self):
        ds = DistStream(words())
        for lo, hi in [(0, 7), (-19, -3), (2**63, 2**63 + 5), (-5, 6)]:
            x = ds.integers(2000, lo, hi)
            assert int(x.min()) >= lo and int(x.max()) < hi

    def test_full_span_equals_raw_words(self):
        """[0, 2**64) has nothing to reject: output is the word stream."""
        raw = words()(64)
        np.testing.assert_array_equal(
            DistStream(words()).integers(64, 0, 2**64), raw
        )

    def test_power_of_two_span_consumes_one_word_each(self):
        ds = DistStream(words())
        ds.integers(100, 0, 1 << 20)
        assert ds.words_consumed == 100

    def test_mulhilo64_exact(self):
        rng = np.random.Generator(np.random.PCG64(7))
        a = rng.integers(0, 2**64, 50, dtype=np.uint64)
        for b in (3, 2**32 + 1, 2**63 + 12345):
            hi, lo = tr.mulhilo64(a, np.uint64(b))
            for av, hv, lv in zip(a.tolist(), hi.tolist(), lo.tolist()):
                prod = av * b
                assert hv == prod >> 64 and lv == prod & (2**64 - 1)


class TestSampleDispatch:
    def test_matches_direct_calls(self):
        for dist, params, direct in [
            ("uniform01", {}, lambda d: d.uniform01(32)),
            ("normal", {"mean": 2.0, "std": 0.5},
             lambda d: d.normal(32, mean=2.0, std=0.5)),
            ("exponential", {"rate": 3.0},
             lambda d: d.exponential(32, rate=3.0)),
            ("integers", {"lo": -4, "hi": 40},
             lambda d: d.integers(32, -4, 40)),
        ]:
            got = DistStream(words()).sample(dist, 32, params)
            expect = direct(DistStream(words()))
            np.testing.assert_array_equal(_bits(got), _bits(expect))

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            DistStream(words()).sample("cauchy", 4, {})

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown"):
            DistStream(words()).sample("normal", 4, {"scale": 2.0})

    def test_serve_registry_is_all_zero_carry(self):
        ds = DistStream(words())
        for dist in SERVE_DISTRIBUTIONS:
            ds.sample(dist, 17, None)
        assert all(v.size == 0 for v in ds._carry.values())


class TestZigguratTables:
    def test_self_check(self):
        zt._self_check()

    def test_layer_geometry(self):
        # Every interior rectangle has area V; the base strip + tail too.
        for i in range(1, zt.ZIG_LAYERS):
            area = zt.ZIG_X[i] * (zt.ZIG_Y[i + 1] - zt.ZIG_Y[i])
            assert area == pytest.approx(zt.ZIG_V, rel=1e-9)
        assert zt.ZIG_X[zt.ZIG_LAYERS] == 0.0
        assert zt.ZIG_TAIL_SF == pytest.approx(1.29016e-4, rel=1e-3)

    def test_attempt_word_costs(self):
        assert tr.WORDS_PER_ATTEMPT["ziggurat_normal"] == 2
        assert tr.MAX_YIELD["ziggurat_normal"] == 1
        assert tr.MAX_YIELD["polar_normal"] == 2
        assert tr.MAX_YIELD["boxmuller_normal"] == 2


class TestSourceContract:
    def test_rejects_sourceless_object(self):
        with pytest.raises(TypeError):
            DistStream(42)

    def test_accepts_generate_object_and_callable_identically(self):
        gen = MT19937(7)
        a = DistStream(gen.u64_array).normal(50)

        class Wrapped:
            def __init__(self):
                self._g = MT19937(7)

            def generate(self, n):
                return self._g.u64_array(n)

        b = DistStream(Wrapped()).normal(50)
        np.testing.assert_array_equal(_bits(a), _bits(b))

    def test_words_consumed_accounting(self):
        ds = DistStream(words())
        ds.uniform01(10)
        assert ds.words_consumed == 10
        ds.normal(5)  # ziggurat: 2 words per attempt, maybe retries
        assert ds.words_consumed >= 20
        assert ds.words_consumed % 2 == 0
