"""Property-style stream-contract tests across every layer.

The contract: a stream is one canonical sequence determined by its
identity (seed, lanes, walk length, policy -- and for the engine,
shard count), and ``generate(n)`` merely slices it.  Splitting ``n``
across arbitrary fetch sizes must never change the values, at any
layer: the core bank, the process-sharded engine, and a serve session.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitsource.counter import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.streams import derive_seed
from repro.engine import EngineConfig, ShardedEngine, serial_reference
from repro.serve.session import SessionStream


def fetch_split(generate, sizes):
    return np.concatenate([generate(s) for s in sizes])


split_sizes = st.lists(
    st.integers(min_value=0, max_value=150), min_size=1, max_size=8
)


class TestCoreContract:
    @given(split_sizes)
    @settings(max_examples=25, deadline=None)
    def test_any_split_equals_bulk(self, sizes):
        p = ParallelExpanderPRNG(
            num_threads=32, bit_source=SplitMix64Source(1)
        )
        q = ParallelExpanderPRNG(
            num_threads=32, bit_source=SplitMix64Source(1)
        )
        np.testing.assert_array_equal(
            fetch_split(p.generate, sizes), q.generate(sum(sizes))
        )

    @given(split_sizes)
    @settings(max_examples=10, deadline=None)
    def test_batch_size_never_changes_values(self, sizes):
        p = ParallelExpanderPRNG(
            num_threads=32, bit_source=SplitMix64Source(2)
        )
        q = ParallelExpanderPRNG(
            num_threads=32, bit_source=SplitMix64Source(2)
        )
        a = np.concatenate(
            [p.generate(s, batch_size=1 + i) for i, s in enumerate(sizes)]
        )
        np.testing.assert_array_equal(a, q.generate(sum(sizes)))


class TestEngineContract:
    """The shard pool serves the same canonical stream."""

    CONFIG = EngineConfig(seed=5, shards=2, lanes=8, ring_slots=2)

    @pytest.mark.parametrize("sizes", [
        [1, 37, 2, 100, 60],
        [16, 16, 16, 16],
        [0, 3, 0, 97],
        [200],
    ])
    def test_any_split_equals_serial_reference(self, sizes):
        ref = serial_reference(self.CONFIG, sum(sizes))
        with ShardedEngine(self.CONFIG) as eng:
            got = fetch_split(eng.generate, sizes)
        np.testing.assert_array_equal(got, ref)

    def test_named_stream_split_invariance(self):
        with ShardedEngine(self.CONFIG) as eng:
            a = np.concatenate([
                eng.fetch_stream(11, 16, s) for s in (3, 50, 1, 10)
            ])
            b = eng.fetch_stream(12, 16, 64)  # decoy: different stream
            with ShardedEngine(self.CONFIG) as eng2:
                bulk = eng2.fetch_stream(11, 16, 64)
        np.testing.assert_array_equal(a, bulk)
        assert not np.array_equal(b, bulk)


class TestServeContract:
    def test_session_split_invariance(self):
        a = SessionStream("alice", master_seed=7, lanes=16)
        b = SessionStream("alice", master_seed=7, lanes=16)
        np.testing.assert_array_equal(
            fetch_split(a.generate, [3, 50, 1, 10]), b.generate(64)
        )


class TestShardDisjointness:
    """Shards derive disjoint substreams of the master seed."""

    def test_shard_feed_seeds_distinct(self):
        seeds = [derive_seed(9, i) for i in range(64)]
        assert len(set(seeds)) == 64

    def test_shard_blocks_share_no_values(self):
        config = EngineConfig(seed=9, shards=4, lanes=16)
        rounds = serial_reference(config, 4 * 16 * 8).reshape(8, 4, 16)
        # Lane blocks within a round are pairwise distinct...
        for r in range(8):
            for i in range(4):
                for j in range(i + 1, 4):
                    assert not np.array_equal(rounds[r, i], rounds[r, j])
        # ...and the 64-bit outputs never collide across the sample.
        assert np.unique(rounds).size == rounds.size
