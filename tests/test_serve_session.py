"""Stream-derivation tests at the service boundary.

The serving contract (ISSUE 3): distinct session ids get independent
streams, the same ``(master_seed, session_id)`` pair reproduces the
identical stream across a server restart, and the id -> seed derivation
is collision-free at the 10k-session scale.
"""

import numpy as np
import pytest

from repro.bitsource.counter import SplitMix64Source
from repro.resilience.faults import FaultyBitSource
from repro.serve.session import (
    SERVE_RETRY_POLICY,
    SessionStream,
    session_index,
    session_seed,
)


class TestDerivation:
    def test_index_is_stable_and_id_dependent(self):
        assert session_index("alice") == session_index("alice")
        assert session_index("alice") != session_index("bob")
        assert 0 <= session_index("alice") < 2**64

    def test_seed_depends_on_master_and_id(self):
        assert session_seed(1, "alice") == session_seed(1, "alice")
        assert session_seed(1, "alice") != session_seed(2, "alice")
        assert session_seed(1, "alice") != session_seed(1, "bob")

    def test_no_collisions_across_10k_session_ids(self):
        seeds = {session_seed(1, f"client-{i}") for i in range(10_000)}
        assert len(seeds) == 10_000
        indexes = {session_index(f"client-{i}") for i in range(10_000)}
        assert len(indexes) == 10_000


class TestSessionStream:
    def test_distinct_ids_have_disjoint_prefixes(self):
        a = SessionStream("alice", master_seed=1)
        b = SessionStream("bob", master_seed=1)
        va = set(map(int, a.generate(512)))
        vb = set(map(int, b.generate(512)))
        assert not va & vb

    def test_restart_reproduces_identical_stream(self):
        """A fresh instance (fresh server) replays the same stream."""
        first = SessionStream("alice", master_seed=9).generate(256)
        second = SessionStream("alice", master_seed=9).generate(256)
        np.testing.assert_array_equal(first, second)

    def test_split_fetches_equal_one_bulk_fetch(self):
        """Request sizing must not change the stream (on-demand contract)."""
        split = SessionStream("carol", master_seed=3)
        bulk = SessionStream("carol", master_seed=3)
        chunks = [split.generate(n) for n in (10, 1, 53)]
        np.testing.assert_array_equal(
            np.concatenate(chunks), bulk.generate(64)
        )

    def test_master_seed_separates_fleets(self):
        one = SessionStream("alice", master_seed=1).generate(256)
        two = SessionStream("alice", master_seed=2).generate(256)
        assert set(map(int, one)).isdisjoint(set(map(int, two)))

    def test_accounting_and_describe(self):
        s = SessionStream("dave", master_seed=1)
        s.generate(32)
        s.generate(16)
        assert s.words_served == 48
        assert s.requests == 2
        doc = s.describe()
        assert doc["session"] == "dave"
        assert doc["words_served"] == 48
        assert doc["health"] == "OK"
        assert doc["stream_index"] == session_index("dave")
        assert "seed" not in doc  # no seed material over the wire

    def test_dying_primary_degrades_not_kills(self):
        def factory(seed):
            return FaultyBitSource(
                SplitMix64Source(seed), "failover", sleep=lambda s: None
            )

        # Enough traffic to exhaust the walk engine's prefetched feed
        # buffer and force fresh draws from the (now dead) primary.
        s = SessionStream(
            "sick", master_seed=1, source_factory=factory,
            retry_policy=SERVE_RETRY_POLICY,
        )
        for _ in range(40):
            assert s.generate(128).size == 128
        assert s.health == "DEGRADED"
        assert s.supervisor.stats.failovers >= 1

    def test_failover_disabled_fails_hard(self):
        from repro.resilience.errors import FeedFailedError
        from repro.resilience.supervised import RetryPolicy

        def factory(seed):
            return FaultyBitSource(
                SplitMix64Source(seed), "fatal", sleep=lambda s: None
            )

        # The walker bank draws its start vertices at construction, so a
        # fatal feed with no failover chain must surface the structured
        # error immediately -- never a hang, never a half-built session.
        with pytest.raises(FeedFailedError):
            SessionStream(
                "doomed", master_seed=1, source_factory=factory,
                failover=False,
                retry_policy=RetryPolicy(max_retries=1, backoff_base_s=0.0),
            )

    def test_lanes_are_part_of_stream_identity(self):
        a = SessionStream("alice", master_seed=1, lanes=64).generate(64)
        b = SessionStream("alice", master_seed=1, lanes=32).generate(64)
        assert not np.array_equal(a, b)
